// Package benchkit is the load-generation and performance-tracking
// subsystem: it synthesizes multi-community workloads (configurable mixes of
// window, next-happy, and churn marry/divorce operations over G(n,p), ring,
// and clique communities at several scales), drives them either in-process
// against a service.Registry or over HTTP against a live holidayd, and
// records latency quantiles, throughput, cache hit ratio, and allocation
// counts into versioned BENCH_<rev>.json snapshots that successive revisions
// compare against (see Compare and cmd/holidayload).
//
// Scenario op streams are deterministic under a fixed seed: each worker of
// a run draws from its own OpGen seeded by a fixed function of the run seed
// and worker index (see Run), so two runs of the same scenario and seed
// request identical work and differ only in timing.
package benchkit

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"
)

// OpKind enumerates the request types a scenario mixes.
type OpKind int

const (
	// OpWindow is a closed-form schedule window query (the read hot path).
	OpWindow OpKind = iota
	// OpNext is a family's next-happy-holiday query.
	OpNext
	// OpMarry inserts an in-law edge, possibly forcing a §6 recoloring and a
	// cache invalidation.
	OpMarry
	// OpDivorce removes an in-law edge.
	OpDivorce
	numOpKinds
)

// String names the op kind as it appears in snapshots.
func (k OpKind) String() string {
	switch k {
	case OpWindow:
		return "window"
	case OpNext:
		return "next"
	case OpMarry:
		return "marry"
	case OpDivorce:
		return "divorce"
	default:
		return fmt.Sprintf("opkind(%d)", int(k))
	}
}

// OpMix weights the four op kinds. Weights are relative (they need not sum
// to anything particular); a zero weight disables the kind.
type OpMix struct {
	Window  int `json:"window"`
	Next    int `json:"next"`
	Marry   int `json:"marry"`
	Divorce int `json:"divorce"`
}

// weights returns the mix as an indexable array.
func (m OpMix) weights() [numOpKinds]int {
	return [numOpKinds]int{m.Window, m.Next, m.Marry, m.Divorce}
}

// total sums the weights.
func (m OpMix) total() int { return m.Window + m.Next + m.Marry + m.Divorce }

// CommunitySpec names one community of a scenario and the graph it starts
// from (a graph.ParseSpec string, e.g. "gnp:n=256,p=0.03"). Kind selects the
// scheduling problem ("" or "classic" for the paper's vertex scheduling,
// "poly" for Polyamorous edge scheduling); Code picks the scheduler within
// the kind and DefaultDemand the poly community's default per-edge demand.
//
// Poly scenarios must start from graphs with at least as many edges as
// families: next-happy queries index edge slots, the slot space starts at
// the initial edge count and never shrinks, so m ≥ n keeps every generated
// OpNext in range.
type CommunitySpec struct {
	ID            string `json:"id"`
	Spec          string `json:"spec"`
	Kind          string `json:"kind,omitempty"`
	Code          string `json:"code,omitempty"`
	DefaultDemand int64  `json:"default_demand,omitempty"`
}

// Scenario is a named synthetic workload: a set of communities at chosen
// scales and an op mix drawn over them.
type Scenario struct {
	Name        string
	Desc        string
	Communities []CommunitySpec
	Mix         OpMix
	// WindowSpan is the maximum holidays one window query covers.
	WindowSpan int
	// Horizon bounds the holiday range queries are drawn from.
	Horizon int64
	// Duration is the default run length (overridable per run).
	Duration time.Duration
	// Persist enables the durability subsystem on the in-process driver:
	// the registry journals every churn op to a WAL in a temporary data
	// directory, so the run prices the write-ahead hot-path cost. The HTTP
	// driver ignores it (a live holidayd's durability is its own -data-dir
	// configuration).
	Persist bool
	// ZipfS, when positive, skews community selection: community i (list
	// order) is drawn with weight 1/(i+1)^ZipfS instead of uniformly. The
	// mega family lists its giant communities first, so traffic
	// concentrates on them the way real serving traffic concentrates on
	// large tenants. Zero keeps the historical uniform draw.
	ZipfS float64
	// ChurnFrac records the fraction of ops that are churn (marry+divorce
	// over the mix total) when the mix was derived via WithChurnFraction;
	// zero for scenarios whose mix is hand-set. Snapshots carry it and
	// Compare refuses to compare across differing fractions.
	ChurnFrac float64
}

// WithChurnFraction derives a copy of the scenario whose op mix dedicates
// fraction f of ops to churn, preserving the original window:next and
// marry:divorce ratios (defaulting to 60:40 marry:divorce when the original
// mix has no churn). The derived mix is expressed in parts per thousand, so
// fractions as fine as 0.001 survive the integer weights.
func (sc *Scenario) WithChurnFraction(f float64) (*Scenario, error) {
	if f < 0 || f > 1 {
		return nil, fmt.Errorf("benchkit: churn fraction %v outside [0,1]", f)
	}
	churnW := int(f*1000 + 0.5)
	readW := 1000 - churnW
	d := *sc
	d.ChurnFrac = f
	d.Mix = OpMix{}
	if readW > 0 {
		if rt := sc.Mix.Window + sc.Mix.Next; rt > 0 {
			d.Mix.Window = readW * sc.Mix.Window / rt
			d.Mix.Next = readW - d.Mix.Window
		} else {
			d.Mix.Window = readW
		}
	}
	if churnW > 0 {
		if ct := sc.Mix.Marry + sc.Mix.Divorce; ct > 0 {
			d.Mix.Marry = churnW * sc.Mix.Marry / ct
		} else {
			d.Mix.Marry = churnW * 60 / 100
		}
		d.Mix.Divorce = churnW - d.Mix.Marry
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Scenarios returns the built-in named workloads, in presentation order.
// "ci" is deliberately small: it is the workload the bench-gate CI job runs
// on every PR; "ci-persist" is the identical workload derived with the
// durability WAL enabled, so the two can never drift apart.
func Scenarios() []*Scenario {
	ci := &Scenario{
		Name: "ci",
		Desc: "small mixed read/churn workload sized for the CI regression gate",
		Communities: []CommunitySpec{
			{ID: "gnp-s", Spec: "gnp:n=128,p=0.05"},
			{ID: "ring-s", Spec: "cycle:n=64"},
			{ID: "clique-s", Spec: "clique:n=16"},
		},
		Mix:        OpMix{Window: 70, Next: 20, Marry: 6, Divorce: 4},
		WindowSpan: 52,
		Horizon:    1 << 20,
		Duration:   2 * time.Second,
	}
	ciPersist := *ci
	ciPersist.Name = "ci-persist"
	ciPersist.Desc = "the ci workload with the durability WAL enabled (prices the write-ahead hot path)"
	ciPersist.Persist = true
	return []*Scenario{
		ci,
		&ciPersist,
		{
			Name: "read",
			Desc: "read-only window/next traffic over mid-size communities (pure cache-hit path)",
			Communities: []CommunitySpec{
				{ID: "gnp-m", Spec: "gnp:n=1024,p=0.01"},
				{ID: "ring-m", Spec: "cycle:n=512"},
				{ID: "clique-m", Spec: "clique:n=32"},
			},
			Mix:        OpMix{Window: 75, Next: 25},
			WindowSpan: 52,
			Horizon:    1 << 30,
			Duration:   10 * time.Second,
		},
		{
			Name: "churn",
			Desc: "marriage/divorce heavy traffic stressing §6 recoloring and cache invalidation",
			Communities: []CommunitySpec{
				{ID: "gnp-m", Spec: "gnp:n=512,p=0.02"},
				{ID: "ring-m", Spec: "cycle:n=256"},
				{ID: "clique-s", Spec: "clique:n=24"},
			},
			Mix:        OpMix{Window: 35, Next: 15, Marry: 30, Divorce: 20},
			WindowSpan: 26,
			Horizon:    1 << 20,
			Duration:   10 * time.Second,
		},
		{
			Name: "mixed",
			Desc: "mixed read/churn traffic across small-to-large communities",
			Communities: []CommunitySpec{
				{ID: "gnp-s", Spec: "gnp:n=256,p=0.03"},
				{ID: "gnp-l", Spec: "gnp:n=4096,p=0.002"},
				{ID: "ring-l", Spec: "cycle:n=2048"},
				{ID: "clique-m", Spec: "clique:n=48"},
			},
			Mix:        OpMix{Window: 60, Next: 25, Marry: 9, Divorce: 6},
			WindowSpan: 52,
			Horizon:    1 << 30,
			Duration:   15 * time.Second,
		},
		{
			Name: "large",
			Desc: "window scans over one large sparse community (allocation pressure path)",
			Communities: []CommunitySpec{
				{ID: "gnp-xl", Spec: "gnp:n=16384,p=0.0005"},
			},
			Mix:        OpMix{Window: 90, Next: 10},
			WindowSpan: 365,
			Horizon:    1 << 40,
			Duration:   15 * time.Second,
		},
		{
			Name: "poly",
			Desc: "polyamorous edge-scheduling communities (kind=poly) under mixed read/churn traffic",
			// Default demands are sized ≥ n: sustained marry churn drives a
			// community toward the complete graph, whose edge-chromatic
			// number (= layers needed) is n-1, so demand ≥ n keeps the
			// instance feasible — and max_gap_ratio ≤ 1 — for the whole run.
			Communities: []CommunitySpec{
				{ID: "poly-gnp-m", Spec: "gnp:n=512,p=0.02", Kind: "poly", DefaultDemand: 1024},
				{ID: "poly-ring-m", Spec: "cycle:n=256", Kind: "poly", Code: "bucketed", DefaultDemand: 512},
				{ID: "poly-clique-s", Spec: "clique:n=24", Kind: "poly", DefaultDemand: 512},
			},
			Mix:        OpMix{Window: 55, Next: 25, Marry: 12, Divorce: 8},
			WindowSpan: 52,
			Horizon:    1 << 30,
			Duration:   10 * time.Second,
		},
		{
			Name: "poly-ci",
			Desc: "the poly workload at CI sizes (regression gate for the edge-scheduling path)",
			// Demands ≥ n for the same churn-saturation feasibility reason
			// as the full-size poly scenario above.
			Communities: []CommunitySpec{
				{ID: "poly-gnp-s", Spec: "gnp:n=128,p=0.05", Kind: "poly", DefaultDemand: 256},
				{ID: "poly-ring-s", Spec: "cycle:n=64", Kind: "poly", Code: "bucketed", DefaultDemand: 128},
				{ID: "poly-clique-s", Spec: "clique:n=16", Kind: "poly", DefaultDemand: 256},
			},
			Mix:        OpMix{Window: 55, Next: 25, Marry: 12, Divorce: 8},
			WindowSpan: 52,
			Horizon:    1 << 20,
			Duration:   2 * time.Second,
		},
		megaScenario("mega",
			"million-node power-law communities under sustained zipf-skewed write traffic",
			[]int{500_000, 250_000, 100_000}, 40, 512, 20*time.Second),
		megaScenario("mega-ci",
			"the mega shape at CI-smoke sizes (same zipf skew and churn fraction, seconds not minutes)",
			[]int{4096, 2048}, 8, 64, 2*time.Second),
	}
}

// megaChurnFrac is the mega family's default fraction of ops that are churn.
const megaChurnFrac = 0.2

// megaScenario builds one member of the mega family: a few giant power-law
// (preferential-attachment) communities listed first — where the zipf draw
// concentrates traffic — plus a long tail of small ones, under a mix derived
// from the family's churn fraction. The builder exists because a hand-written
// community list at these counts would drown the scenario table; the panics
// are unreachable for the fixed parameters above.
func megaScenario(name, desc string, big []int, smallCount, smallSize int, dur time.Duration) *Scenario {
	sc := &Scenario{
		Name: name,
		Desc: desc,
		// Reads are mostly cheap next-happy point queries with a thin
		// window slice on top: a span-52 window over a 500k-node community
		// materializes tens of MB and hundreds of ms per op, which would
		// drown the write-path signal this family exists to measure.
		Mix:        OpMix{Window: 1, Next: 4}, // churn share set by WithChurnFraction
		WindowSpan: 12,
		Horizon:    1 << 30,
		Duration:   dur,
		ZipfS:      1.1,
	}
	for i, n := range big {
		sc.Communities = append(sc.Communities, CommunitySpec{
			ID:   fmt.Sprintf("mega-big-%d", i),
			Spec: fmt.Sprintf("powerlaw:n=%d,m=3", n),
		})
	}
	for i := 0; i < smallCount; i++ {
		sc.Communities = append(sc.Communities, CommunitySpec{
			ID:   fmt.Sprintf("mega-small-%d", i),
			Spec: fmt.Sprintf("powerlaw:n=%d,m=2", smallSize),
		})
	}
	sc, err := sc.WithChurnFraction(megaChurnFrac)
	if err != nil {
		panic(err.Error())
	}
	return sc
}

// ScenarioByName resolves a named workload.
func ScenarioByName(name string) (*Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("benchkit: unknown scenario %q (known: %s)", name, scenarioNames())
}

// scenarioNames joins the known scenario names for error messages.
func scenarioNames() string {
	s := ""
	for i, sc := range Scenarios() {
		if i > 0 {
			s += ", "
		}
		s += sc.Name
	}
	return s
}

// Validate checks a scenario is runnable: at least one community, a positive
// mix, and sane bounds.
func (sc *Scenario) Validate() error {
	if len(sc.Communities) == 0 {
		return fmt.Errorf("benchkit: scenario %q has no communities", sc.Name)
	}
	if sc.Mix.total() <= 0 {
		return fmt.Errorf("benchkit: scenario %q has an empty op mix", sc.Name)
	}
	if sc.Mix.Window < 0 || sc.Mix.Next < 0 || sc.Mix.Marry < 0 || sc.Mix.Divorce < 0 {
		return fmt.Errorf("benchkit: scenario %q has a negative op weight", sc.Name)
	}
	if sc.WindowSpan < 1 {
		return fmt.Errorf("benchkit: scenario %q has window span %d < 1", sc.Name, sc.WindowSpan)
	}
	if sc.Horizon < 1 {
		return fmt.Errorf("benchkit: scenario %q has horizon %d < 1", sc.Name, sc.Horizon)
	}
	if sc.ZipfS < 0 {
		return fmt.Errorf("benchkit: scenario %q has negative zipf exponent %v", sc.Name, sc.ZipfS)
	}
	if sc.ChurnFrac < 0 || sc.ChurnFrac > 1 {
		return fmt.Errorf("benchkit: scenario %q has churn fraction %v outside [0,1]", sc.Name, sc.ChurnFrac)
	}
	return nil
}

// ValidateSizes checks the created communities can serve the mix: every
// community has at least one family, and at least two when churn ops are
// enabled (a couple needs two distinct families).
func (sc *Scenario) ValidateSizes(sizes []int) error {
	churn := sc.Mix.Marry > 0 || sc.Mix.Divorce > 0
	for i, n := range sizes {
		if n < 1 {
			return fmt.Errorf("benchkit: scenario %q community %d has %d families", sc.Name, i, n)
		}
		if churn && n < 2 {
			return fmt.Errorf("benchkit: scenario %q mixes marry/divorce ops but community %q has only %d family",
				sc.Name, sc.Communities[i].ID, n)
		}
	}
	return nil
}

// Op is one generated request. Community indexes the scenario's community
// list; U/V are family ids (U the queried family for OpNext, the couple for
// churn ops); From/To bound OpWindow and OpNext queries.
type Op struct {
	Kind      OpKind
	Community int
	U, V      int
	From, To  int64
}

// OpGen deterministically generates a scenario's op stream. sizes gives the
// current family count of each community (as created by the driver); two
// generators with equal (scenario, sizes, seed) yield identical streams.
type OpGen struct {
	sc      *Scenario
	sizes   []int
	r       *rand.Rand
	weights [numOpKinds]int
	total   int
	// zipf holds the cumulative community-selection weights of a skewed
	// scenario (nil for the uniform draw): community i is chosen when the
	// uniform draw lands in (zipf[i-1], zipf[i]].
	zipf []float64
}

// NewOpGen builds a generator for the scenario over communities of the given
// sizes. It panics if sizes does not match the scenario's community list or
// a community is too small for the mix — the runner pre-checks both via
// ValidateSizes, so the panics only fire on direct misuse.
func NewOpGen(sc *Scenario, sizes []int, seed uint64) *OpGen {
	if len(sizes) != len(sc.Communities) {
		panic(fmt.Sprintf("benchkit: %d sizes for %d communities", len(sizes), len(sc.Communities)))
	}
	if err := sc.ValidateSizes(sizes); err != nil {
		panic(err.Error())
	}
	g := &OpGen{
		sc:      sc,
		sizes:   append([]int(nil), sizes...),
		r:       rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
		weights: sc.Mix.weights(),
		total:   sc.Mix.total(),
	}
	if sc.ZipfS > 0 {
		g.zipf = make([]float64, len(sizes))
		sum := 0.0
		for i := range g.zipf {
			sum += math.Pow(float64(i+1), -sc.ZipfS)
			g.zipf[i] = sum
		}
	}
	return g
}

// community draws the target community: zipf-skewed toward the front of the
// list when the scenario sets ZipfS, uniform otherwise.
func (g *OpGen) community() int {
	if g.zipf == nil {
		return g.r.IntN(len(g.sizes))
	}
	x := g.r.Float64() * g.zipf[len(g.zipf)-1]
	ci := sort.SearchFloat64s(g.zipf, x)
	if ci == len(g.zipf) { // x == the total, possible at the float boundary
		ci--
	}
	return ci
}

// Next returns the following op of the stream.
func (g *OpGen) Next() Op {
	ci := g.community()
	n := g.sizes[ci]
	op := Op{Community: ci, Kind: g.kind()}
	switch op.Kind {
	case OpWindow:
		span := int64(1 + g.r.IntN(g.sc.WindowSpan))
		op.From = 1 + g.r.Int64N(g.sc.Horizon)
		op.To = op.From + span - 1
	case OpNext:
		op.U = g.r.IntN(n)
		op.From = 1 + g.r.Int64N(g.sc.Horizon)
	case OpMarry, OpDivorce:
		// Distinct couple; ValidateSizes guarantees n ≥ 2 when churn ops
		// are enabled, so the draw below cannot degenerate.
		op.U = g.r.IntN(n)
		op.V = g.r.IntN(n - 1)
		if op.V >= op.U {
			op.V++
		}
	}
	return op
}

// kind draws an op kind by mix weight.
func (g *OpGen) kind() OpKind {
	x := g.r.IntN(g.total)
	for k, w := range g.weights {
		if x < w {
			return OpKind(k)
		}
		x -= w
	}
	return OpWindow // unreachable: weights sum to total
}
