package benchkit

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Options configure one load run.
type Options struct {
	// Duration of the measured phase; <= 0 uses the scenario default.
	Duration time.Duration
	// Workers issuing ops concurrently; < 1 uses GOMAXPROCS.
	Workers int
	// QPS is the aggregate target rate across workers; 0 runs unthrottled
	// (measures the maximum the target sustains).
	QPS float64
	// Seed drives community generation and every worker's op stream.
	Seed uint64
	// Batch groups this many ops into each request; > 1 requires a driver
	// implementing BatchDriver (the HTTP driver in binary mode). Each op of
	// a batch records the whole batch's latency — that is the user-visible
	// completion time of a batched query.
	Batch int
	// Rev and Note annotate the snapshot (git revision, free-form context).
	Rev, Note string
}

// workerState is one worker's private measurement, merged after the run so
// the hot loop never shares memory.
type workerState struct {
	overall  Hist
	perKind  [numOpKinds]Hist
	errors   [numOpKinds]int64
	firstErr error
}

// Run drives the scenario against the driver and returns the measured
// snapshot. Community creation and one cache-warming window query per
// community happen before the clock starts, so the measured phase sees the
// steady serving state. An error is returned for setup failures or a run in
// which every op failed; sporadic op errors are counted in the snapshot.
func Run(sc *Scenario, d Driver, opt Options) (*Snapshot, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if opt.Duration <= 0 {
		opt.Duration = sc.Duration
	}
	if opt.Workers < 1 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.Batch < 1 {
		opt.Batch = 1
	}
	var bd BatchDriver
	if opt.Batch > 1 {
		var ok bool
		if bd, ok = d.(BatchDriver); !ok {
			return nil, fmt.Errorf("benchkit: driver %q does not support batched requests", d.Name())
		}
	}
	sizes, err := d.Setup(sc, opt.Seed)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	if err := sc.ValidateSizes(sizes); err != nil {
		return nil, err
	}

	// Warm the frozen-schedule caches: the first query per community pays
	// the freeze; steady-state serving is what the snapshot tracks.
	for ci := range sc.Communities {
		if err := d.Do(Op{Kind: OpWindow, Community: ci, From: 1, To: 1}); err != nil {
			return nil, fmt.Errorf("benchkit: warmup query on %q failed: %w", sc.Communities[ci].ID, err)
		}
	}
	hits0, misses0, err := d.CacheStats()
	if err != nil {
		return nil, err
	}
	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)

	states := make([]workerState, opt.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(opt.Duration)
	// Pacing: each worker owns a 1/Workers share of the target rate and
	// walks a fixed tick grid, skipping sleeps when it falls behind.
	var interval time.Duration
	if opt.QPS > 0 {
		interval = time.Duration(float64(opt.Workers) / opt.QPS * float64(time.Second))
	}
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &states[w]
			// Distinct, widely separated streams per worker; the offset
			// keeps worker 0 of different worker counts distinct too.
			gen := NewOpGen(sc, sizes, opt.Seed+0x100000001b3*uint64(w+1))
			// A batched worker paces per batch: one request carries Batch
			// ops, so the tick stride scales with the batch size.
			stride := interval * time.Duration(opt.Batch)
			ops := make([]Op, opt.Batch)
			errs := make([]error, opt.Batch)
			next := start.Add(interval * time.Duration(w) / time.Duration(opt.Workers))
			for {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(stride)
				}
				if !time.Now().Before(deadline) {
					return
				}
				for i := range ops {
					ops[i] = gen.Next()
					errs[i] = nil
				}
				t0 := time.Now()
				var batchErr error
				if bd != nil {
					batchErr = bd.DoBatch(ops, errs)
				} else {
					errs[0] = d.Do(ops[0])
				}
				lat := time.Since(t0)
				for i := range ops {
					st.overall.Record(lat)
					st.perKind[ops[i].Kind].Record(lat)
					err := errs[i]
					if batchErr != nil {
						err = batchErr
					}
					if err != nil {
						st.errors[ops[i].Kind]++
						if st.firstErr == nil {
							st.firstErr = err
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)
	hits1, misses1, err := d.CacheStats()
	if err != nil {
		return nil, err
	}

	var merged Hist
	var perKind [numOpKinds]Hist
	var errs int64
	var firstErr error
	for w := range states {
		merged.Merge(&states[w].overall)
		for k := range perKind {
			perKind[k].Merge(&states[w].perKind[k])
			errs += states[w].errors[k]
		}
		if firstErr == nil {
			firstErr = states[w].firstErr
		}
	}
	ops := merged.Count()
	if ops == 0 {
		return nil, fmt.Errorf("benchkit: run completed no ops (duration %s too short?)", opt.Duration)
	}
	if errs == ops {
		return nil, fmt.Errorf("benchkit: all %d ops failed; first error: %w", ops, firstErr)
	}

	s := &Snapshot{
		Schema:      SchemaVersion,
		Rev:         opt.Rev,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Scenario:    sc.Name,
		Driver:      d.Name(),
		Workers:     opt.Workers,
		QPSTarget:   opt.QPS,
		DurationSec: elapsed.Seconds(),
		Seed:        opt.Seed,
		GoVersion:   runtime.Version(),
		Maxprocs:    runtime.GOMAXPROCS(0),
		Persist:     isPersistent(d),
		Proto:       protoOf(d),
		Batch:       batchLabel(opt.Batch),
		Note:        opt.Note,
		Totals: Metrics{
			Ops:    ops,
			Errors: errs,
			// Only successfully served ops count toward the gated
			// throughput: a change that fails an op class fast must read
			// as a qps regression, not a speedup.
			QPS:         float64(ops-errs) / elapsed.Seconds(),
			P50Micro:    micros(merged.Quantile(0.50)),
			P95Micro:    micros(merged.Quantile(0.95)),
			P99Micro:    micros(merged.Quantile(0.99)),
			AllocsPerOp: float64(mem1.Mallocs-mem0.Mallocs) / float64(ops),
			BytesPerOp:  float64(mem1.TotalAlloc-mem0.TotalAlloc) / float64(ops),
		},
		PerOp: map[string]OpStats{},
	}
	if lookups := (hits1 - hits0) + (misses1 - misses0); lookups > 0 {
		s.Totals.CacheHitRatio = float64(hits1-hits0) / float64(lookups)
	}
	for k := range perKind {
		h := &perKind[k]
		if h.Count() == 0 {
			continue
		}
		s.PerOp[OpKind(k).String()] = OpStats{
			Count:    h.Count(),
			Errors:   sumErrors(states, OpKind(k)),
			P50Micro: micros(h.Quantile(0.50)),
			P95Micro: micros(h.Quantile(0.95)),
			P99Micro: micros(h.Quantile(0.99)),
		}
	}
	return s, nil
}

// persister is the optional Driver interface reporting whether the
// durability subsystem was active for the run (the in-process driver with a
// WAL attached); the snapshot records it.
type persister interface{ Persistent() bool }

// isPersistent probes a driver for persistence.
func isPersistent(d Driver) bool {
	p, ok := d.(persister)
	return ok && p.Persistent()
}

// protoReporter is the optional Driver interface naming the wire protocol
// the run drove (see HTTPDriver.ProtoName); the snapshot records it.
type protoReporter interface{ ProtoName() string }

// protoOf probes a driver for its protocol label.
func protoOf(d Driver) string {
	p, ok := d.(protoReporter)
	if !ok {
		return ""
	}
	return p.ProtoName()
}

// batchLabel normalizes the snapshot's batch field: unbatched runs record
// nothing, keeping them comparable to pre-batching baselines.
func batchLabel(batch int) int {
	if batch <= 1 {
		return 0
	}
	return batch
}

// micros converts a duration to fractional microseconds for the snapshot.
func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// sumErrors totals one op kind's errors across workers.
func sumErrors(states []workerState, k OpKind) int64 {
	var n int64
	for w := range states {
		n += states[w].errors[k]
	}
	return n
}
