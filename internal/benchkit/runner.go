package benchkit

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Options configure one load run.
type Options struct {
	// Duration of the measured phase; <= 0 uses the scenario default.
	Duration time.Duration
	// Workers issuing ops concurrently; < 1 uses GOMAXPROCS.
	Workers int
	// QPS is the aggregate target rate across workers; 0 runs unthrottled
	// (measures the maximum the target sustains).
	QPS float64
	// Seed drives community generation and every worker's op stream.
	Seed uint64
	// Batch groups this many ops into each request; > 1 requires a driver
	// implementing BatchDriver. Per-op latency is recorded as the batch's
	// round trip divided by the batch size — the amortized cost one op paid
	// — while the raw whole-batch round trip is tracked separately under
	// the "batch" per-op key. (Recording the raw round trip per op, as the
	// runner once did, made every op kind's quantiles collapse onto the
	// identical batch RTT and masked per-kind differences entirely.)
	Batch int
	// Rev and Note annotate the snapshot (git revision, free-form context).
	Rev, Note string
}

// workerState is one worker's private measurement, merged after the run so
// the hot loop never shares memory.
type workerState struct {
	overall  Hist
	perKind  [numOpKinds]Hist
	batch    Hist // whole-batch round trips of a batched run
	errors   [numOpKinds]int64
	firstErr error
}

// Run drives the scenario against the driver and returns the measured
// snapshot. Community creation and one cache-warming window query per
// community happen before the clock starts, so the measured phase sees the
// steady serving state. An error is returned for setup failures or a run in
// which every op failed; sporadic op errors are counted in the snapshot.
func Run(sc *Scenario, d Driver, opt Options) (*Snapshot, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if opt.Duration <= 0 {
		opt.Duration = sc.Duration
	}
	if opt.Workers < 1 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.Batch < 1 {
		opt.Batch = 1
	}
	var bd BatchDriver
	if opt.Batch > 1 {
		var ok bool
		if bd, ok = d.(BatchDriver); !ok {
			return nil, fmt.Errorf("benchkit: driver %q does not support batched requests", d.Name())
		}
	}
	// Bracket Setup with GC-settled heap readings: the delta divided by the
	// family count is the resident bytes-per-node metric of schema 2. Only
	// the in-process driver's communities live in this process, so only its
	// runs record it.
	_, inProc := d.(*InProcDriver)
	var heap0 uint64
	if inProc {
		heap0 = settledHeap()
	}
	sizes, err := d.Setup(sc, opt.Seed)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	if err := sc.ValidateSizes(sizes); err != nil {
		return nil, err
	}
	var bytesPerNode float64
	if totalNodes := sum(sizes); inProc && totalNodes > 0 {
		// A shrinking heap (Setup freed more than it kept, possible when a
		// prior run's garbage collects late) records 0, never a negative or
		// non-finite value — encoding/json refuses NaN/Inf.
		if heap1 := settledHeap(); heap1 > heap0 {
			bytesPerNode = float64(heap1-heap0) / float64(totalNodes)
		}
	}

	// Warm the frozen-schedule caches: the first query per community pays
	// the freeze; steady-state serving is what the snapshot tracks.
	for ci := range sc.Communities {
		if err := d.Do(Op{Kind: OpWindow, Community: ci, From: 1, To: 1}); err != nil {
			return nil, fmt.Errorf("benchkit: warmup query on %q failed: %w", sc.Communities[ci].ID, err)
		}
	}
	hits0, misses0, err := d.CacheStats()
	if err != nil {
		return nil, err
	}
	recolor0, haveRecolor := recoloringsOf(d)
	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)

	states := make([]workerState, opt.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(opt.Duration)
	// Pacing: each worker owns a 1/Workers share of the target rate and
	// walks a fixed tick grid, skipping sleeps when it falls behind.
	var interval time.Duration
	if opt.QPS > 0 {
		interval = time.Duration(float64(opt.Workers) / opt.QPS * float64(time.Second))
	}
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &states[w]
			// Distinct, widely separated streams per worker; the offset
			// keeps worker 0 of different worker counts distinct too.
			gen := NewOpGen(sc, sizes, opt.Seed+0x100000001b3*uint64(w+1))
			// A batched worker paces per batch: one request carries Batch
			// ops, so the tick stride scales with the batch size.
			stride := interval * time.Duration(opt.Batch)
			ops := make([]Op, opt.Batch)
			errs := make([]error, opt.Batch)
			next := start.Add(interval * time.Duration(w) / time.Duration(opt.Workers))
			for {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(stride)
				}
				if !time.Now().Before(deadline) {
					return
				}
				for i := range ops {
					ops[i] = gen.Next()
					errs[i] = nil
				}
				t0 := time.Now()
				var batchErr error
				if bd != nil {
					batchErr = bd.DoBatch(ops, errs)
				} else {
					errs[0] = d.Do(ops[0])
				}
				lat := time.Since(t0)
				// Amortized attribution: each op carries its share of the
				// batch round trip; the raw RTT goes to the batch hist.
				opLat := lat
				if len(ops) > 1 {
					opLat = lat / time.Duration(len(ops))
					st.batch.Record(lat)
				}
				for i := range ops {
					st.overall.Record(opLat)
					st.perKind[ops[i].Kind].Record(opLat)
					err := errs[i]
					if batchErr != nil {
						err = batchErr
					}
					if err != nil {
						st.errors[ops[i].Kind]++
						if st.firstErr == nil {
							st.firstErr = err
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)
	hits1, misses1, err := d.CacheStats()
	if err != nil {
		return nil, err
	}
	recolor1, _ := recoloringsOf(d)

	var merged, batchHist Hist
	var perKind [numOpKinds]Hist
	var errs int64
	var firstErr error
	for w := range states {
		merged.Merge(&states[w].overall)
		batchHist.Merge(&states[w].batch)
		for k := range perKind {
			perKind[k].Merge(&states[w].perKind[k])
			errs += states[w].errors[k]
		}
		if firstErr == nil {
			firstErr = states[w].firstErr
		}
	}
	ops := merged.Count()
	if ops == 0 {
		return nil, fmt.Errorf("benchkit: run completed no ops (duration %s too short?)", opt.Duration)
	}
	if errs == ops {
		return nil, fmt.Errorf("benchkit: all %d ops failed; first error: %w", ops, firstErr)
	}

	s := &Snapshot{
		Schema:        SchemaVersion,
		Rev:           opt.Rev,
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		Scenario:      sc.Name,
		Driver:        d.Name(),
		Workers:       opt.Workers,
		QPSTarget:     opt.QPS,
		DurationSec:   elapsed.Seconds(),
		Seed:          opt.Seed,
		GoVersion:     runtime.Version(),
		Maxprocs:      runtime.GOMAXPROCS(0),
		Persist:       isPersistent(d),
		WALSyncAlways: isSyncAlways(d),
		Proto:         protoOf(d),
		Batch:         batchLabel(opt.Batch),
		Nodes:         nodesOf(d),
		ChurnFrac:     sc.ChurnFrac,
		Note:          opt.Note,
		Totals: Metrics{
			Ops:    ops,
			Errors: errs,
			// Only successfully served ops count toward the gated
			// throughput: a change that fails an op class fast must read
			// as a qps regression, not a speedup.
			QPS:          float64(ops-errs) / elapsed.Seconds(),
			P50Micro:     micros(merged.Quantile(0.50)),
			P95Micro:     micros(merged.Quantile(0.95)),
			P99Micro:     micros(merged.Quantile(0.99)),
			AllocsPerOp:  float64(mem1.Mallocs-mem0.Mallocs) / float64(ops),
			BytesPerOp:   float64(mem1.TotalAlloc-mem0.TotalAlloc) / float64(ops),
			BytesPerNode: bytesPerNode,
		},
		PerOp: map[string]OpStats{},
	}
	if churnOps := perKind[OpMarry].Count() + perKind[OpDivorce].Count(); haveRecolor && churnOps > 0 && recolor1 >= recolor0 {
		s.Totals.RecoloringsPerChurnOp = float64(recolor1-recolor0) / float64(churnOps)
	}
	if edges, maxGap, ok := polyStatsOf(d); ok && edges > 0 {
		s.Totals.Edges = edges
		s.Totals.MaxGapRatio = maxGap
	}
	if batchHist.Count() > 0 {
		// The raw whole-batch round trips of a batched run, under the
		// reserved "batch" key (no OpKind ever renders this name): the
		// user-visible completion time one batched request paid, kept
		// alongside the amortized per-kind quantiles.
		s.PerOp["batch"] = OpStats{
			Count:    batchHist.Count(),
			P50Micro: micros(batchHist.Quantile(0.50)),
			P95Micro: micros(batchHist.Quantile(0.95)),
			P99Micro: micros(batchHist.Quantile(0.99)),
		}
	}
	if lookups := (hits1 - hits0) + (misses1 - misses0); lookups > 0 {
		s.Totals.CacheHitRatio = float64(hits1-hits0) / float64(lookups)
	}
	for k := range perKind {
		h := &perKind[k]
		if h.Count() == 0 {
			continue
		}
		s.PerOp[OpKind(k).String()] = OpStats{
			Count:    h.Count(),
			Errors:   sumErrors(states, OpKind(k)),
			P50Micro: micros(h.Quantile(0.50)),
			P95Micro: micros(h.Quantile(0.95)),
			P99Micro: micros(h.Quantile(0.99)),
		}
	}
	return s, nil
}

// persister is the optional Driver interface reporting whether the
// durability subsystem was active for the run (the in-process driver with a
// WAL attached); the snapshot records it.
type persister interface{ Persistent() bool }

// isPersistent probes a driver for persistence.
func isPersistent(d Driver) bool {
	p, ok := d.(persister)
	return ok && p.Persistent()
}

// walSyncProber is the optional Driver interface reporting that the WAL
// fsynced every append before acknowledging it; the snapshot records (and
// the comparator gates on) it.
type walSyncProber interface{ WALSyncAlways() bool }

// isSyncAlways probes a driver for per-op-durable WAL acknowledgement.
func isSyncAlways(d Driver) bool {
	p, ok := d.(walSyncProber)
	return ok && p.WALSyncAlways()
}

// protoReporter is the optional Driver interface naming the wire protocol
// the run drove (see HTTPDriver.ProtoName); the snapshot records it.
type protoReporter interface{ ProtoName() string }

// protoOf probes a driver for its protocol label.
func protoOf(d Driver) string {
	p, ok := d.(protoReporter)
	if !ok {
		return ""
	}
	return p.ProtoName()
}

// nodesReporter is the optional Driver interface reporting cluster size
// (see ClusterDriver); the snapshot records the member count.
type nodesReporter interface{ NodeCount() int }

// nodesOf probes a driver for its cluster size; 0 for single-target drivers.
func nodesOf(d Driver) int {
	n, ok := d.(nodesReporter)
	if !ok {
		return 0
	}
	return n.NodeCount()
}

// batchLabel normalizes the snapshot's batch field: unbatched runs record
// nothing, keeping them comparable to pre-batching baselines.
func batchLabel(batch int) int {
	if batch <= 1 {
		return 0
	}
	return batch
}

// recoloringsReporter is the optional Driver interface summing the §6
// recoloring counters across the scenario's communities; drivers that
// implement it let the snapshot record recolorings_per_churn_op.
type recoloringsReporter interface{ Recolorings() (int64, error) }

// recoloringsOf probes a driver for its recoloring total. Probe errors read
// as "not reported" — the metric is informational and must not fail a run
// that completed.
func recoloringsOf(d Driver) (int64, bool) {
	r, ok := d.(recoloringsReporter)
	if !ok {
		return 0, false
	}
	n, err := r.Recolorings()
	if err != nil {
		return 0, false
	}
	return n, true
}

// polyStatsReporter is the optional Driver interface summing live edges and
// the worst max-gap ratio across a scenario's poly communities; drivers that
// implement it let poly-scenario snapshots record totals.edges and
// totals.max_gap_ratio.
type polyStatsReporter interface {
	PolyStats() (edges int64, maxGap float64, err error)
}

// polyStatsOf probes a driver for its poly totals. Probe errors read as "not
// reported" — the metrics are informational and must not fail a completed
// run.
func polyStatsOf(d Driver) (int64, float64, bool) {
	r, ok := d.(polyStatsReporter)
	if !ok {
		return 0, 0, false
	}
	edges, maxGap, err := r.PolyStats()
	if err != nil {
		return 0, 0, false
	}
	return edges, maxGap, true
}

// settledHeap reads the live-heap size after forcing a collection, so two
// readings bracket real retention rather than transient garbage.
func settledHeap() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// sum totals a size list.
func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// micros converts a duration to fractional microseconds for the snapshot.
func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// sumErrors totals one op kind's errors across workers.
func sumErrors(states []workerState, k OpKind) int64 {
	var n int64
	for w := range states {
		n += states[w].errors[k]
	}
	return n
}
