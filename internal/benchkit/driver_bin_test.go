package benchkit

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

// TestRunHTTPBinary drives the full stack over the binary protocol, both
// unbatched and batched, and checks the snapshot records the protocol so
// comparisons against JSON runs refuse to gate.
func TestRunHTTPBinary(t *testing.T) {
	reg := service.NewRegistry()
	srv := httptest.NewServer(service.NewHandler(service.HandlerOpts{Owner: reg}))
	defer srv.Close()

	d := NewHTTPDriver(srv.URL, 2)
	d.Proto = ProtoBinary
	snap, err := Run(testScenario(), d, Options{Seed: 3, Workers: 2, Rev: "test"})
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, snap, "http")
	if snap.Proto != ProtoBinary || snap.Batch != 0 {
		t.Fatalf("snapshot records proto %q batch %d, want %q and 0", snap.Proto, snap.Batch, ProtoBinary)
	}

	batched, err := Run(testScenario(), d, Options{Seed: 3, Workers: 2, Batch: 8, Rev: "test"})
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, batched, "http")
	if batched.Proto != ProtoBinary || batched.Batch != 8 {
		t.Fatalf("snapshot records proto %q batch %d, want %q and 8", batched.Proto, batched.Batch, ProtoBinary)
	}
	if got := reg.List(); len(got) != 0 {
		t.Errorf("binary driver left communities on the server after Close: %v", got)
	}

	// Mismatched runs must refuse to gate, not quietly compare.
	if cmp := Compare(snap, batched, 0.25); cmp.Pass || !strings.Contains(cmp.Mismatch, "batch") {
		t.Fatalf("batched vs unbatched comparison: %+v", cmp)
	}
	jsonSnap := *snap
	jsonSnap.Proto = ""
	if cmp := Compare(&jsonSnap, snap, 0.25); cmp.Pass || !strings.Contains(cmp.Mismatch, "protocol") {
		t.Fatalf("binary vs JSON comparison: %+v", cmp)
	}
}

// TestDoBatchMapsErrors: per-op failures inside a batch must land at their
// position while the rest of the batch is served.
func TestDoBatchMapsErrors(t *testing.T) {
	reg := service.NewRegistry()
	if _, err := reg.Create("c", 16, [][2]int{{0, 1}}, ""); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(service.HandlerOpts{Owner: reg}))
	defer srv.Close()

	d := NewHTTPDriver(srv.URL, 1)
	d.Proto = ProtoBinary
	d.ids = []string{"c"}

	ops := []Op{
		{Kind: OpWindow, Community: 0, From: 1, To: 4},
		{Kind: OpWindow, Community: 0, From: 9, To: 3}, // empty window → 400 in band
		{Kind: OpNext, Community: 0, U: 1, From: 1},
		{Kind: OpNext, Community: 0, U: 99, From: 1}, // unknown family → 404 in band
	}
	errs := make([]error, len(ops))
	if err := d.DoBatch(ops, errs); err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid ops errored: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "status 400") {
		t.Fatalf("empty window op: %v, want an in-band 400", errs[1])
	}
	if errs[3] == nil || !strings.Contains(errs[3].Error(), "status 404") {
		t.Fatalf("unknown family op: %v, want an in-band 404", errs[3])
	}
}

// noBatchDriver hides InProcDriver's DoBatch so the runner sees a Driver
// with no batch support.
type noBatchDriver struct{ d *InProcDriver }

func (n noBatchDriver) Name() string                                   { return n.d.Name() }
func (n noBatchDriver) Setup(sc *Scenario, seed uint64) ([]int, error) { return n.d.Setup(sc, seed) }
func (n noBatchDriver) Do(op Op) error                                 { return n.d.Do(op) }
func (n noBatchDriver) CacheStats() (int64, int64, error)              { return n.d.CacheStats() }
func (n noBatchDriver) Close() error                                   { return n.d.Close() }

// TestRunBatchNeedsBatchDriver: a batched run over a driver without batch
// support is a configuration error, not a silent fallback.
func TestRunBatchNeedsBatchDriver(t *testing.T) {
	_, err := Run(testScenario(), noBatchDriver{NewInProcDriver(service.NewRegistry())}, Options{Batch: 4})
	if err == nil || !strings.Contains(err.Error(), "batch") {
		t.Fatalf("want a batch-support error, got %v", err)
	}
}
