package wire

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// seedCorpus returns well-formed frames of every kind, so the fuzzers start
// from valid encodings and mutate toward the interesting boundaries.
func seedCorpus() [][]byte {
	return [][]byte{
		AppendWindowReq(nil, "demo", 1, 52),
		AppendNextReq(nil, "demo", 3, 10),
		AppendNextResp(nil, 12),
		AppendError(nil, 404, 2, "no community \"x\""),
		AppendSubscribe(nil, 42, "node-b"),
		AppendRecords(nil, []RawRecord{{Seq: 1, Data: []byte(`{"op":1}`)}, {Seq: 2}}),
		AppendSnapshot(nil, 17, []byte(`{"id":"demo"}`)),
		AppendHeartbeat(nil, 99),
		encodeWindowResp(nil, 70, 41, [][]int{{0, 3, 64}, {}, {69}}),
		encodeWindowResp(nil, 1, 1, [][]int{{0}}),
		encodeWindowResp(nil, 0, 1, nil),
		AppendChurnReq(nil, ChurnInsert, "demo", 0, 1),
		AppendChurnReq(nil, ChurnDelete, "demo", 5, 2),
		AppendChurnResp(nil, true, true),
		// Two frames back to back: the batch shape the endpoints consume.
		AppendWindowReq(AppendWindowReq(nil, "a", 1, 2), "b", 3, 4),
		// A churn batch touching two communities: the grouping shape the
		// /v1/bin/churn endpoint consumes.
		AppendChurnReq(AppendChurnReq(AppendChurnReq(nil, ChurnInsert, "a", 0, 1), ChurnInsert, "b", 2, 3), ChurnDelete, "a", 0, 1),
	}
}

// FuzzSplit: decoding arbitrary bytes as a frame stream must never panic,
// never loop, and every successfully split frame must survive its per-kind
// decoder without panicking or reading out of bounds. Accepted window
// responses must re-encode to the identical bytes (canonical round trip).
func FuzzSplit(f *testing.F) {
	for _, seed := range seedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for frames := 0; len(rest) > 0 && frames < 1024; frames++ {
			fr, r, err := Split(rest)
			if err != nil {
				return
			}
			if len(r) >= len(rest) {
				t.Fatalf("Split did not consume input: %d → %d bytes", len(rest), len(r))
			}
			consumed := rest[:len(rest)-len(r)]
			switch fr.Kind {
			case KindWindowReq:
				if id, from, to, err := fr.WindowReq(); err == nil {
					if got := AppendWindowReq(nil, id, from, to); !bytes.Equal(got, consumed) {
						t.Fatalf("window request did not round trip:\n got %x\nwant %x", got, consumed)
					}
				}
			case KindNextReq:
				if id, v, from, err := fr.NextReq(); err == nil {
					if got := AppendNextReq(nil, id, v, from); !bytes.Equal(got, consumed) {
						t.Fatalf("next request did not round trip:\n got %x\nwant %x", got, consumed)
					}
				}
			case KindNextResp:
				if next, err := fr.NextResp(); err == nil {
					if got := AppendNextResp(nil, next); !bytes.Equal(got, consumed) {
						t.Fatalf("next response did not round trip:\n got %x\nwant %x", got, consumed)
					}
				}
			case KindError:
				_, _, _, _ = fr.ErrorResp()
			case KindSubscribe:
				if fromSeq, node, err := fr.Subscribe(); err == nil {
					if got := AppendSubscribe(nil, fromSeq, node); !bytes.Equal(got, consumed) {
						t.Fatalf("subscribe did not round trip:\n got %x\nwant %x", got, consumed)
					}
				}
			case KindRecords:
				if recs, err := fr.Records(nil); err == nil {
					if got := AppendRecords(nil, recs); !bytes.Equal(got, consumed) {
						t.Fatalf("records did not round trip:\n got %x\nwant %x", got, consumed)
					}
				}
			case KindSnapshot:
				if cutoff, state, err := fr.Snapshot(); err == nil {
					if got := AppendSnapshot(nil, cutoff, state); !bytes.Equal(got, consumed) {
						t.Fatalf("snapshot did not round trip:\n got %x\nwant %x", got, consumed)
					}
				}
			case KindHeartbeat:
				if seq, err := fr.Heartbeat(); err == nil {
					if got := AppendHeartbeat(nil, seq); !bytes.Equal(got, consumed) {
						t.Fatalf("heartbeat did not round trip:\n got %x\nwant %x", got, consumed)
					}
				}
			case KindChurnReq:
				if op, id, u, v, err := fr.ChurnReq(); err == nil {
					if got := AppendChurnReq(nil, op, id, u, v); !bytes.Equal(got, consumed) {
						t.Fatalf("churn request did not round trip:\n got %x\nwant %x", got, consumed)
					}
				}
			case KindChurnResp:
				if applied, recolored, err := fr.ChurnResp(); err == nil {
					if got := AppendChurnResp(nil, applied, recolored); !bytes.Equal(got, consumed) {
						t.Fatalf("churn response did not round trip:\n got %x\nwant %x", got, consumed)
					}
				}
			case KindWindowResp:
				wr, err := fr.WindowResp()
				if err != nil {
					break
				}
				// Decode every row both ways; indices must stay in [0, N).
				var happy []int
				var bm graph.Bitset
				for i := 0; i < wr.Rows; i++ {
					happy = wr.AppendHappy(happy[:0], i)
					for _, v := range happy {
						if v < 0 || v >= wr.N {
							t.Fatalf("row %d decoded family %d outside [0,%d)", i, v, wr.N)
						}
					}
					bm = wr.AppendBitmap(bm[:0], i)
					if bm.Count() != len(happy) {
						t.Fatalf("row %d: bitmap has %d bits, happy decode %d", i, bm.Count(), len(happy))
					}
				}
			}
			rest = r
		}
	})
}

// FuzzWindowRespRoundTrip drives the encoder with fuzzed parameters and
// requires exact decode: every bit set on the way in comes back, in order,
// at the right holiday.
func FuzzWindowRespRoundTrip(f *testing.F) {
	f.Add(uint16(70), int64(41), uint8(3), uint64(0x8000000000000009))
	f.Add(uint16(1), int64(1), uint8(1), uint64(1))
	f.Add(uint16(64), int64(1<<40), uint8(7), uint64(0xffffffffffffffff))
	f.Fuzz(func(t *testing.T, n16 uint16, from int64, rows8 uint8, pattern uint64) {
		n := int(n16)%512 + 1
		rows := int(rows8)%16 + 1
		want := make([][]int, rows)
		row := graph.NewBitset(n)
		buf := AppendWindowRespHeader(nil, n, from, rows)
		for i := 0; i < rows; i++ {
			row.Reset()
			for v := 0; v < n; v++ {
				if pattern>>(uint(v+i)%64)&1 == 1 {
					row.Set(v)
					want[i] = append(want[i], v)
				}
			}
			buf = row.AppendBytes(buf)
		}
		fr, rest, err := Split(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("Split of a fresh encoding failed: %v (%d rest)", err, len(rest))
		}
		wr, err := fr.WindowResp()
		if err != nil {
			t.Fatal(err)
		}
		if wr.N != n || wr.From != from || wr.Rows != rows {
			t.Fatalf("header %+v, want n=%d from=%d rows=%d", wr, n, from, rows)
		}
		var happy []int
		for i := 0; i < rows; i++ {
			happy = wr.AppendHappy(happy[:0], i)
			if len(happy) != len(want[i]) {
				t.Fatalf("row %d decoded %d families, want %d", i, len(happy), len(want[i]))
			}
			for j := range happy {
				if happy[j] != want[i][j] {
					t.Fatalf("row %d decoded %v, want %v", i, happy, want[i])
				}
			}
		}
	})
}
