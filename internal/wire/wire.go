// Package wire is the length-prefixed, versioned binary wire format of the
// serving layer: window answers travel as word-packed happy bitmaps — one
// ⌈n/64⌉-word graph.Bitset row per holiday, emitted straight from the
// closed-form periodic schedules (core.WindowBits) without ever
// materializing []int rows — and requests/responses are framed so a single
// HTTP body can carry a whole batch of pipelined queries.
//
// Layout (all integers little-endian; see DESIGN.md §9 for the normative
// spec):
//
//	frame   := u32 length | payload          length = len(payload) ≤ MaxFrame
//	payload := 'H' 'W' | u8 version | u8 kind | body
//
//	WindowReq  (1): u16 idLen | id | i64 from | i64 to
//	WindowResp (2): u32 n | i64 from | u32 rows | rows × ⌈n/64⌉ × u64
//	NextReq    (3): u16 idLen | id | u32 family | i64 from
//	NextResp   (4): i64 next
//	Error      (5): u16 status | u16 code | u16 msgLen | msg
//	ChurnReq   (6): u8 op | u16 idLen | id | u32 u | u32 v
//	ChurnResp  (7): u8 flags (bit 0 applied, bit 1 recolored)
//	Subscribe  (8): u64 fromSeq | u16 idLen | node id
//	Records    (9): u32 count | count × (u64 seq | u32 len | bytes)
//	Snapshot  (10): u64 cutoff | u32 len | bytes
//	Heartbeat (11): u64 seq
//
//	HandoffOffer (12): u64 epoch | u16 idLen | id | u32 tableLen | table | u32 stateLen | state
//	HandoffAck   (13): u64 seq | u16 idLen | id
//
// Kinds 8–11 are the replication stream of internal/cluster: a follower
// opens a connection with Subscribe naming the last sequence it has applied,
// and the owner answers with Snapshot frames (one per community, the
// catch-up path), then Records frames carrying WAL records (the same JSON
// objects wal.jsonl stores, framed with their sequence numbers) and
// Heartbeat frames advertising the owner's current sequence so an idle
// follower can still measure its lag.
//
// Kinds 12–13 are the live-handoff exchange (DESIGN.md §12): the old owner
// of a community opens a connection to the new owner's replication listener
// with HandoffOffer — the placement table being flipped to (JSON), the
// community's exported state, and the epoch — then streams the WAL tail
// (Records or a re-export Snapshot) accumulated while the offer was in
// flight, marks the fencing cut with a Heartbeat carrying the cut sequence,
// and waits for HandoffAck confirming the new owner applied everything and
// took ownership.
//
// A batch is frames concatenated back to back; responses correspond 1:1 and
// in order with the request frames, per-query failures arriving as Error
// frames in position. Decoding never trusts the input: every length is
// bounds-checked, row payloads must match rows·⌈n/64⌉·8 exactly, and stray
// bits beyond family n-1 in the last row word are masked off — properties
// pinned by the package's fuzz targets.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"repro/internal/graph"
)

// Version is the wire-format version byte; decoders refuse anything else.
// History: 1 = PR 5 query frames; 2 adds the replication kinds (8–11) and a
// u16 error code to Error frames (the {code, message} envelope shared with
// the JSON endpoints).
const Version = 2

// MaxFrame bounds a single frame's payload. A window response over MaxWindow
// holidays of a 100k-family community is ~6.4 MB; 16 MiB leaves headroom
// without letting a hostile length prefix commit the decoder to gigabytes.
const MaxFrame = 16 << 20

// MaxIDLen bounds community ids on the wire (the u16 length field's range).
const MaxIDLen = 1<<16 - 1

const (
	magic0, magic1 = 'H', 'W'
	prefixLen      = 4 // u32 payload length
	headerLen      = 4 // magic(2) + version + kind
)

// Kind tags a frame's payload layout.
type Kind uint8

const (
	// KindWindowReq asks for the packed window [from, to] of a community.
	KindWindowReq Kind = 1 + iota
	// KindWindowResp carries the packed bitmap rows of a window answer.
	KindWindowResp
	// KindNextReq asks for a family's next happy holiday at or after from.
	KindNextReq
	// KindNextResp carries the next-happy answer.
	KindNextResp
	// KindError carries a per-query failure (status mirrors the HTTP code
	// the JSON endpoint would have answered).
	KindError
	// KindChurnReq asks for one edge edit (marry or divorce) in a
	// community; consecutive churn requests for the same community in one
	// batch body are applied as a single amortized ChurnBatch flush.
	KindChurnReq
	// KindChurnResp reports what one churn edit did.
	KindChurnResp
	// KindSubscribe opens a replication stream: the follower names the last
	// WAL sequence it has applied and its node id.
	KindSubscribe
	// KindRecords carries a batch of WAL records, each framed with its
	// sequence number (the payload bytes are the wal.jsonl JSON objects).
	KindRecords
	// KindSnapshot carries one community's exported state (JSON) plus the
	// sequence cutoff it reflects — the catch-up path when a follower's
	// subscription predates the owner's replication buffer.
	KindSnapshot
	// KindHeartbeat advertises the owner's current WAL sequence so idle
	// followers can measure replication lag.
	KindHeartbeat
	// KindHandoffOffer opens a live handoff: the old owner of a community
	// offers its exported state plus the placement table (JSON) being
	// flipped to at the named epoch.
	KindHandoffOffer
	// KindHandoffAck completes a handoff: the new owner confirms it applied
	// the offer (and any WAL tail) through the acknowledged sequence and has
	// taken ownership.
	KindHandoffAck
)

// Churn op bytes of a ChurnReq body. The values deliberately match
// core.EditInsert and core.EditDelete so the serving layer forwards the op
// byte without translation.
const (
	// ChurnInsert marries u and v (inserts the edge).
	ChurnInsert byte = 1
	// ChurnDelete divorces u and v (removes the edge).
	ChurnDelete byte = 2
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case KindWindowReq:
		return "window-request"
	case KindWindowResp:
		return "window-response"
	case KindNextReq:
		return "next-request"
	case KindNextResp:
		return "next-response"
	case KindError:
		return "error"
	case KindChurnReq:
		return "churn-request"
	case KindChurnResp:
		return "churn-response"
	case KindSubscribe:
		return "subscribe"
	case KindRecords:
		return "records"
	case KindSnapshot:
		return "snapshot"
	case KindHeartbeat:
		return "heartbeat"
	case KindHandoffOffer:
		return "handoff-offer"
	case KindHandoffAck:
		return "handoff-ack"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Words returns the packed words per happy-bitmap row over n families —
// the ⌈n/64⌉ of the format.
func Words(n int) int { return (n + 63) / 64 }

// appendHeader appends the length prefix and payload header of a frame
// whose body is bodyLen bytes.
func appendHeader(dst []byte, kind Kind, bodyLen int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(headerLen+bodyLen))
	return append(dst, magic0, magic1, Version, byte(kind))
}

// appendID appends a length-prefixed community id. Ids longer than MaxIDLen
// are a programming error (the serving layer never registers them): panic
// rather than emit a torn frame.
func appendID(dst []byte, id string) []byte {
	if len(id) > MaxIDLen {
		panic(fmt.Sprintf("wire: community id of %d bytes exceeds MaxIDLen", len(id)))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(id)))
	return append(dst, id...)
}

// AppendWindowReq appends a window-request frame for community id's
// holidays [from, to].
func AppendWindowReq(dst []byte, id string, from, to int64) []byte {
	dst = appendHeader(dst, KindWindowReq, 2+len(id)+16)
	dst = appendID(dst, id)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(from))
	return binary.LittleEndian.AppendUint64(dst, uint64(to))
}

// AppendNextReq appends a next-request frame for community id's family v at
// or after from.
func AppendNextReq(dst []byte, id string, v int, from int64) []byte {
	dst = appendHeader(dst, KindNextReq, 2+len(id)+12)
	dst = appendID(dst, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	return binary.LittleEndian.AppendUint64(dst, uint64(from))
}

// AppendChurnReq appends a churn-request frame editing the marriage edge
// (u, v) of community id; op is ChurnInsert or ChurnDelete.
func AppendChurnReq(dst []byte, op byte, id string, u, v int) []byte {
	dst = appendHeader(dst, KindChurnReq, 1+2+len(id)+8)
	dst = append(dst, op)
	dst = appendID(dst, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(u))
	return binary.LittleEndian.AppendUint32(dst, uint32(v))
}

// AppendChurnResp appends a churn-response frame reporting whether the edit
// changed the edge set and whether it recolored anybody.
func AppendChurnResp(dst []byte, applied, recolored bool) []byte {
	dst = appendHeader(dst, KindChurnResp, 1)
	var flags byte
	if applied {
		flags |= 1
	}
	if recolored {
		flags |= 2
	}
	return append(dst, flags)
}

// AppendWindowRespHeader begins a window-response frame covering rows
// holidays over n families starting at holiday from. The caller must follow
// with exactly rows packed rows of Words(n) words each (graph.Bitset
// AppendBytes); the frame length is computed up front, so emission streams
// with no back-patching.
func AppendWindowRespHeader(dst []byte, n int, from int64, rows int) []byte {
	dst = appendHeader(dst, KindWindowResp, 16+rows*Words(n)*8)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(from))
	return binary.LittleEndian.AppendUint32(dst, uint32(rows))
}

// AppendNextResp appends a next-response frame.
func AppendNextResp(dst []byte, next int64) []byte {
	dst = appendHeader(dst, KindNextResp, 8)
	return binary.LittleEndian.AppendUint64(dst, uint64(next))
}

// maxErrMsg truncates error messages on the wire; the u16 length field
// allows more, but a query error never needs it.
const maxErrMsg = 512

// AppendError appends an error frame carrying the {code, message} envelope
// the JSON endpoints answer with: status is the HTTP-equivalent status, code
// the numeric service.ErrCode identifier (see service.ErrCode.Num).
func AppendError(dst []byte, status int, code uint16, msg string) []byte {
	if len(msg) > maxErrMsg {
		msg = msg[:maxErrMsg]
	}
	dst = appendHeader(dst, KindError, 6+len(msg))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(status))
	dst = binary.LittleEndian.AppendUint16(dst, code)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// Frame is one decoded frame: its kind plus the raw body (a subslice of the
// decoded buffer, not a copy — valid as long as the buffer is).
type Frame struct {
	Kind Kind
	Body []byte
}

// Split decodes the first frame of b and returns the remainder, so a batch
// body is consumed by calling Split until the buffer is empty. Errors name
// what was malformed; a nil error guarantees the frame's header was valid
// and its body completely present (per-kind body layout is validated by the
// frame's decode method).
func Split(b []byte) (Frame, []byte, error) {
	if len(b) < prefixLen+headerLen {
		return Frame{}, nil, fmt.Errorf("wire: %d bytes is too short for a frame", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n > MaxFrame {
		return Frame{}, nil, fmt.Errorf("wire: frame payload of %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	if n < headerLen {
		return Frame{}, nil, fmt.Errorf("wire: frame payload of %d bytes is shorter than its header", n)
	}
	if int64(len(b)-prefixLen) < int64(n) {
		return Frame{}, nil, fmt.Errorf("wire: truncated frame: %d payload bytes present, %d declared", len(b)-prefixLen, n)
	}
	p := b[prefixLen : prefixLen+int(n)]
	if p[0] != magic0 || p[1] != magic1 {
		return Frame{}, nil, fmt.Errorf("wire: bad magic %q", p[:2])
	}
	if p[2] != Version {
		return Frame{}, nil, fmt.Errorf("wire: version %d, this build speaks %d", p[2], Version)
	}
	k := Kind(p[3])
	if k < KindWindowReq || k > KindHandoffAck {
		return Frame{}, nil, fmt.Errorf("wire: unknown frame kind %d", p[3])
	}
	return Frame{Kind: k, Body: p[headerLen:]}, b[prefixLen+int(n):], nil
}

// splitID consumes a length-prefixed id from the front of a body.
func splitID(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("wire: body too short for id length")
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b)-2 < n {
		return "", nil, fmt.Errorf("wire: id of %d bytes declared, %d present", n, len(b)-2)
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// WindowReq decodes a window-request body.
func (f Frame) WindowReq() (id string, from, to int64, err error) {
	if f.Kind != KindWindowReq {
		return "", 0, 0, fmt.Errorf("wire: %s frame is not a window request", f.Kind)
	}
	id, rest, err := splitID(f.Body)
	if err != nil {
		return "", 0, 0, err
	}
	if len(rest) != 16 {
		return "", 0, 0, fmt.Errorf("wire: window request has %d trailing bytes, want 16", len(rest))
	}
	from = int64(binary.LittleEndian.Uint64(rest))
	to = int64(binary.LittleEndian.Uint64(rest[8:]))
	return id, from, to, nil
}

// NextReq decodes a next-request body.
func (f Frame) NextReq() (id string, v int, from int64, err error) {
	if f.Kind != KindNextReq {
		return "", 0, 0, fmt.Errorf("wire: %s frame is not a next request", f.Kind)
	}
	id, rest, err := splitID(f.Body)
	if err != nil {
		return "", 0, 0, err
	}
	if len(rest) != 12 {
		return "", 0, 0, fmt.Errorf("wire: next request has %d trailing bytes, want 12", len(rest))
	}
	v32 := binary.LittleEndian.Uint32(rest)
	if v32 > 1<<31-1 {
		return "", 0, 0, fmt.Errorf("wire: family id %d out of range", v32)
	}
	from = int64(binary.LittleEndian.Uint64(rest[4:]))
	return id, int(v32), from, nil
}

// ChurnReq decodes a churn-request body. The op byte is validated here —
// an unknown op never reaches the serving layer.
func (f Frame) ChurnReq() (op byte, id string, u, v int, err error) {
	if f.Kind != KindChurnReq {
		return 0, "", 0, 0, fmt.Errorf("wire: %s frame is not a churn request", f.Kind)
	}
	if len(f.Body) < 1 {
		return 0, "", 0, 0, fmt.Errorf("wire: churn request body is empty")
	}
	op = f.Body[0]
	if op != ChurnInsert && op != ChurnDelete {
		return 0, "", 0, 0, fmt.Errorf("wire: unknown churn op %d", op)
	}
	id, rest, err := splitID(f.Body[1:])
	if err != nil {
		return 0, "", 0, 0, err
	}
	if len(rest) != 8 {
		return 0, "", 0, 0, fmt.Errorf("wire: churn request has %d trailing bytes, want 8", len(rest))
	}
	u32 := binary.LittleEndian.Uint32(rest)
	v32 := binary.LittleEndian.Uint32(rest[4:])
	if u32 > 1<<31-1 || v32 > 1<<31-1 {
		return 0, "", 0, 0, fmt.Errorf("wire: family id out of range")
	}
	return op, id, int(u32), int(v32), nil
}

// ChurnResp decodes a churn-response body.
func (f Frame) ChurnResp() (applied, recolored bool, err error) {
	if f.Kind != KindChurnResp {
		return false, false, fmt.Errorf("wire: %s frame is not a churn response", f.Kind)
	}
	if len(f.Body) != 1 {
		return false, false, fmt.Errorf("wire: churn response body is %d bytes, want 1", len(f.Body))
	}
	if f.Body[0] > 3 {
		return false, false, fmt.Errorf("wire: churn response flags %#x have unknown bits set", f.Body[0])
	}
	return f.Body[0]&1 != 0, f.Body[0]&2 != 0, nil
}

// NextResp decodes a next-response body.
func (f Frame) NextResp() (int64, error) {
	if f.Kind != KindNextResp {
		return 0, fmt.Errorf("wire: %s frame is not a next response", f.Kind)
	}
	if len(f.Body) != 8 {
		return 0, fmt.Errorf("wire: next response body is %d bytes, want 8", len(f.Body))
	}
	return int64(binary.LittleEndian.Uint64(f.Body)), nil
}

// ErrorResp decodes an error body into its status, numeric code, and
// message.
func (f Frame) ErrorResp() (status int, code uint16, msg string, err error) {
	if f.Kind != KindError {
		return 0, 0, "", fmt.Errorf("wire: %s frame is not an error", f.Kind)
	}
	if len(f.Body) < 6 {
		return 0, 0, "", fmt.Errorf("wire: error body is %d bytes, want ≥ 6", len(f.Body))
	}
	n := int(binary.LittleEndian.Uint16(f.Body[4:]))
	if len(f.Body)-6 != n {
		return 0, 0, "", fmt.Errorf("wire: error message of %d bytes declared, %d present", n, len(f.Body)-6)
	}
	return int(binary.LittleEndian.Uint16(f.Body)), binary.LittleEndian.Uint16(f.Body[2:]), string(f.Body[6:]), nil
}

// WindowResp is a decoded window response: rows × Words(N) packed words
// over the frame's body (no copy). From is the first holiday; row i covers
// holiday From+i.
type WindowResp struct {
	N    int   // families covered by each row
	From int64 // first holiday of the window
	Rows int   // holidays (rows) in the response
	data []byte
}

// WindowResp validates and decodes a window-response body.
func (f Frame) WindowResp() (WindowResp, error) {
	if f.Kind != KindWindowResp {
		return WindowResp{}, fmt.Errorf("wire: %s frame is not a window response", f.Kind)
	}
	if len(f.Body) < 16 {
		return WindowResp{}, fmt.Errorf("wire: window response body is %d bytes, want ≥ 16", len(f.Body))
	}
	n := binary.LittleEndian.Uint32(f.Body)
	from := int64(binary.LittleEndian.Uint64(f.Body[4:]))
	rows := binary.LittleEndian.Uint32(f.Body[12:])
	if n > 1<<31-1 {
		return WindowResp{}, fmt.Errorf("wire: window response over %d families out of range", n)
	}
	// int64 math: n < 2^31 ⇒ words < 2^26, rows < 2^32 ⇒ the product stays
	// below 2^61, so a hostile header cannot overflow the size check.
	want := int64(rows) * int64(Words(int(n))) * 8
	if int64(len(f.Body)-16) != want {
		return WindowResp{}, fmt.Errorf("wire: window response carries %d row bytes, %d×⌈%d/64⌉ words need %d",
			len(f.Body)-16, rows, n, want)
	}
	return WindowResp{N: int(n), From: from, Rows: int(rows), data: f.Body[16:]}, nil
}

// Holiday returns the holiday index of row i.
func (wr WindowResp) Holiday(i int) int64 { return wr.From + int64(i) }

// AppendBitmap decodes row i into dst (reusing its capacity) as a
// graph.Bitset, stray bits beyond family N-1 masked off.
func (wr WindowResp) AppendBitmap(dst graph.Bitset, i int) graph.Bitset {
	rw := Words(wr.N) * 8
	dst, _ = graph.AppendBitsetBytes(dst, wr.data[i*rw:(i+1)*rw]) // row length is a multiple of 8 by construction
	if wr.N%64 != 0 && len(dst) > 0 {
		dst[len(dst)-1] &= 1<<uint(wr.N%64) - 1
	}
	return dst
}

// AppendHappy appends row i's happy families to dst in increasing order —
// the decode from packed bitmap back to the JSON []int representation.
// Stray bits beyond family N-1 are ignored.
func (wr WindowResp) AppendHappy(dst []int, i int) []int {
	words := Words(wr.N)
	off := i * words * 8
	for wi := 0; wi < words; wi++ {
		w := binary.LittleEndian.Uint64(wr.data[off+wi*8:])
		if wi == words-1 && wr.N%64 != 0 {
			w &= 1<<uint(wr.N%64) - 1
		}
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// AppendSubscribe appends a subscribe frame: the follower's node id plus the
// last WAL sequence it has applied (the owner streams everything after it).
func AppendSubscribe(dst []byte, fromSeq uint64, node string) []byte {
	dst = appendHeader(dst, KindSubscribe, 8+2+len(node))
	dst = binary.LittleEndian.AppendUint64(dst, fromSeq)
	return appendID(dst, node)
}

// Subscribe decodes a subscribe body.
func (f Frame) Subscribe() (fromSeq uint64, node string, err error) {
	if f.Kind != KindSubscribe {
		return 0, "", fmt.Errorf("wire: %s frame is not a subscribe", f.Kind)
	}
	if len(f.Body) < 8 {
		return 0, "", fmt.Errorf("wire: subscribe body is %d bytes, want ≥ 8", len(f.Body))
	}
	fromSeq = binary.LittleEndian.Uint64(f.Body)
	node, rest, err := splitID(f.Body[8:])
	if err != nil {
		return 0, "", err
	}
	if len(rest) != 0 {
		return 0, "", fmt.Errorf("wire: subscribe has %d trailing bytes", len(rest))
	}
	return fromSeq, node, nil
}

// RawRecord is one replicated WAL record: the owner-assigned sequence number
// plus the record's serialized bytes (the same JSON object wal.jsonl holds).
// Decoded records reference the frame body — copy Data before the buffer is
// reused.
type RawRecord struct {
	Seq  uint64
	Data []byte
}

// AppendRecords appends a records frame carrying recs in order.
func AppendRecords(dst []byte, recs []RawRecord) []byte {
	body := 4
	for _, r := range recs {
		body += 12 + len(r.Data)
	}
	dst = appendHeader(dst, KindRecords, body)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for _, r := range recs {
		dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Data)))
		dst = append(dst, r.Data...)
	}
	return dst
}

// Records decodes a records body, appending to dst (reusing its capacity).
// The returned records' Data fields alias the frame body.
func (f Frame) Records(dst []RawRecord) ([]RawRecord, error) {
	if f.Kind != KindRecords {
		return nil, fmt.Errorf("wire: %s frame is not a records frame", f.Kind)
	}
	if len(f.Body) < 4 {
		return nil, fmt.Errorf("wire: records body is %d bytes, want ≥ 4", len(f.Body))
	}
	count := binary.LittleEndian.Uint32(f.Body)
	b := f.Body[4:]
	for i := uint32(0); i < count; i++ {
		if len(b) < 12 {
			return nil, fmt.Errorf("wire: records frame truncated at record %d of %d", i, count)
		}
		seq := binary.LittleEndian.Uint64(b)
		n := int(binary.LittleEndian.Uint32(b[8:]))
		if len(b)-12 < n {
			return nil, fmt.Errorf("wire: record %d declares %d bytes, %d present", i, n, len(b)-12)
		}
		dst = append(dst, RawRecord{Seq: seq, Data: b[12 : 12+n]})
		b = b[12+n:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: records frame has %d trailing bytes", len(b))
	}
	return dst, nil
}

// AppendSnapshot appends a snapshot frame: one community's exported state
// plus the WAL sequence cutoff it reflects.
func AppendSnapshot(dst []byte, cutoff uint64, state []byte) []byte {
	dst = appendHeader(dst, KindSnapshot, 12+len(state))
	dst = binary.LittleEndian.AppendUint64(dst, cutoff)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(state)))
	return append(dst, state...)
}

// Snapshot decodes a snapshot body. The returned data aliases the frame
// body.
func (f Frame) Snapshot() (cutoff uint64, data []byte, err error) {
	if f.Kind != KindSnapshot {
		return 0, nil, fmt.Errorf("wire: %s frame is not a snapshot", f.Kind)
	}
	if len(f.Body) < 12 {
		return 0, nil, fmt.Errorf("wire: snapshot body is %d bytes, want ≥ 12", len(f.Body))
	}
	n := int(binary.LittleEndian.Uint32(f.Body[8:]))
	if len(f.Body)-12 != n {
		return 0, nil, fmt.Errorf("wire: snapshot declares %d state bytes, %d present", n, len(f.Body)-12)
	}
	return binary.LittleEndian.Uint64(f.Body), f.Body[12:], nil
}

// AppendHeartbeat appends a heartbeat frame advertising the owner's current
// WAL sequence.
func AppendHeartbeat(dst []byte, seq uint64) []byte {
	dst = appendHeader(dst, KindHeartbeat, 8)
	return binary.LittleEndian.AppendUint64(dst, seq)
}

// Heartbeat decodes a heartbeat body.
func (f Frame) Heartbeat() (uint64, error) {
	if f.Kind != KindHeartbeat {
		return 0, fmt.Errorf("wire: %s frame is not a heartbeat", f.Kind)
	}
	if len(f.Body) != 8 {
		return 0, fmt.Errorf("wire: heartbeat body is %d bytes, want 8", len(f.Body))
	}
	return binary.LittleEndian.Uint64(f.Body), nil
}

// AppendHandoffOffer appends a handoff-offer frame: the community being
// handed off, the serialized placement table (JSON) taking effect at epoch,
// and the community's exported state (JSON, which carries its own sequence
// cut).
func AppendHandoffOffer(dst []byte, epoch uint64, id string, table, state []byte) []byte {
	dst = appendHeader(dst, KindHandoffOffer, 8+2+len(id)+4+len(table)+4+len(state))
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	dst = appendID(dst, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(table)))
	dst = append(dst, table...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(state)))
	return append(dst, state...)
}

// HandoffOffer decodes a handoff-offer body. The returned table and state
// alias the frame body.
func (f Frame) HandoffOffer() (epoch uint64, id string, table, state []byte, err error) {
	if f.Kind != KindHandoffOffer {
		return 0, "", nil, nil, fmt.Errorf("wire: %s frame is not a handoff offer", f.Kind)
	}
	if len(f.Body) < 8 {
		return 0, "", nil, nil, fmt.Errorf("wire: handoff offer body is %d bytes, want ≥ 8", len(f.Body))
	}
	epoch = binary.LittleEndian.Uint64(f.Body)
	id, rest, err := splitID(f.Body[8:])
	if err != nil {
		return 0, "", nil, nil, err
	}
	if len(rest) < 4 {
		return 0, "", nil, nil, fmt.Errorf("wire: handoff offer truncated before table length")
	}
	n := int(binary.LittleEndian.Uint32(rest))
	if len(rest)-4 < n {
		return 0, "", nil, nil, fmt.Errorf("wire: handoff offer declares %d table bytes, %d present", n, len(rest)-4)
	}
	table, rest = rest[4:4+n], rest[4+n:]
	if len(rest) < 4 {
		return 0, "", nil, nil, fmt.Errorf("wire: handoff offer truncated before state length")
	}
	n = int(binary.LittleEndian.Uint32(rest))
	if len(rest)-4 != n {
		return 0, "", nil, nil, fmt.Errorf("wire: handoff offer declares %d state bytes, %d present", n, len(rest)-4)
	}
	return epoch, id, table, rest[4:], nil
}

// AppendHandoffAck appends a handoff-ack frame: the new owner has applied
// the named community through seq and taken ownership.
func AppendHandoffAck(dst []byte, seq uint64, id string) []byte {
	dst = appendHeader(dst, KindHandoffAck, 8+2+len(id))
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	return appendID(dst, id)
}

// HandoffAck decodes a handoff-ack body.
func (f Frame) HandoffAck() (seq uint64, id string, err error) {
	if f.Kind != KindHandoffAck {
		return 0, "", fmt.Errorf("wire: %s frame is not a handoff ack", f.Kind)
	}
	if len(f.Body) < 8 {
		return 0, "", fmt.Errorf("wire: handoff ack body is %d bytes, want ≥ 8", len(f.Body))
	}
	seq = binary.LittleEndian.Uint64(f.Body)
	id, rest, err := splitID(f.Body[8:])
	if err != nil {
		return 0, "", err
	}
	if len(rest) != 0 {
		return 0, "", fmt.Errorf("wire: handoff ack has %d trailing bytes", len(rest))
	}
	return seq, id, nil
}

// ReadFrame reads one frame from a stream, reusing buf (grown as needed) for
// the payload; the returned buffer must be passed back in on the next call,
// and the frame body aliases it. This is the replication-stream reader —
// batch HTTP bodies, which arrive fully buffered, use Split instead.
func ReadFrame(r io.Reader, buf []byte) (Frame, []byte, error) {
	var prefix [prefixLen]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return Frame{}, buf, err
	}
	n := binary.LittleEndian.Uint32(prefix[:])
	if n > MaxFrame {
		return Frame{}, buf, fmt.Errorf("wire: frame payload of %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	if n < headerLen {
		return Frame{}, buf, fmt.Errorf("wire: frame payload of %d bytes is shorter than its header", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, buf, fmt.Errorf("wire: truncated frame: %w", err)
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return Frame{}, buf, fmt.Errorf("wire: bad magic %q", buf[:2])
	}
	if buf[2] != Version {
		return Frame{}, buf, fmt.Errorf("wire: version %d, this build speaks %d", buf[2], Version)
	}
	k := Kind(buf[3])
	if k < KindWindowReq || k > KindHandoffAck {
		return Frame{}, buf, fmt.Errorf("wire: unknown frame kind %d", buf[3])
	}
	return Frame{Kind: k, Body: buf[headerLen:]}, buf, nil
}
