package wire

import (
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

// encodeWindowResp builds a complete window-response frame from []int rows,
// the shape the serving layer emits from packed schedules.
func encodeWindowResp(dst []byte, n int, from int64, rows [][]int) []byte {
	dst = AppendWindowRespHeader(dst, n, from, len(rows))
	row := graph.NewBitset(n)
	for _, happy := range rows {
		row.Reset()
		for _, v := range happy {
			row.Set(v)
		}
		dst = row.AppendBytes(dst)
	}
	return dst
}

func TestRequestRoundTrip(t *testing.T) {
	buf := AppendWindowReq(nil, "demo", 7, 58)
	buf = AppendNextReq(buf, "café", 12, 99)
	buf = AppendError(buf, 404, 2, "no community")
	buf = AppendNextResp(buf, 1234)

	f, rest, err := Split(buf)
	if err != nil {
		t.Fatal(err)
	}
	id, from, to, err := f.WindowReq()
	if err != nil || id != "demo" || from != 7 || to != 58 {
		t.Fatalf("WindowReq = %q %d %d (%v)", id, from, to, err)
	}
	f, rest, err = Split(rest)
	if err != nil {
		t.Fatal(err)
	}
	id, v, from, err := f.NextReq()
	if err != nil || id != "café" || v != 12 || from != 99 {
		t.Fatalf("NextReq = %q %d %d (%v)", id, v, from, err)
	}
	f, rest, err = Split(rest)
	if err != nil {
		t.Fatal(err)
	}
	status, code, msg, err := f.ErrorResp()
	if err != nil || status != 404 || code != 2 || msg != "no community" {
		t.Fatalf("ErrorResp = %d %d %q (%v)", status, code, msg, err)
	}
	f, rest, err = Split(rest)
	if err != nil {
		t.Fatal(err)
	}
	next, err := f.NextResp()
	if err != nil || next != 1234 {
		t.Fatalf("NextResp = %d (%v)", next, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after the last frame", len(rest))
	}
}

func TestWindowRespRoundTrip(t *testing.T) {
	rows := [][]int{{0, 3, 64}, {}, {69}, {1, 2, 3, 68, 69}}
	buf := encodeWindowResp(nil, 70, 41, rows)
	f, rest, err := Split(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("Split: %v (rest %d)", err, len(rest))
	}
	wr, err := f.WindowResp()
	if err != nil {
		t.Fatal(err)
	}
	if wr.N != 70 || wr.From != 41 || wr.Rows != len(rows) {
		t.Fatalf("WindowResp header = %+v", wr)
	}
	var happy []int
	var bm graph.Bitset
	for i, want := range rows {
		if wr.Holiday(i) != 41+int64(i) {
			t.Fatalf("Holiday(%d) = %d", i, wr.Holiday(i))
		}
		happy = wr.AppendHappy(happy[:0], i)
		if len(want) == 0 {
			if len(happy) != 0 {
				t.Fatalf("row %d decoded %v, want empty", i, happy)
			}
		} else if !reflect.DeepEqual(happy, want) {
			t.Fatalf("row %d decoded %v, want %v", i, happy, want)
		}
		bm = wr.AppendBitmap(bm[:0], i)
		for _, v := range want {
			if !bm.Test(v) {
				t.Fatalf("row %d bitmap missing %d", i, v)
			}
		}
		if bm.Count() != len(want) {
			t.Fatalf("row %d bitmap has %d bits, want %d", i, bm.Count(), len(want))
		}
	}
}

// TestWindowRespStrayBitsMasked: a response whose last row word carries bits
// beyond family n-1 (hostile or corrupt input — the encoder never sets them)
// must decode as if they were absent.
func TestWindowRespStrayBitsMasked(t *testing.T) {
	buf := encodeWindowResp(nil, 70, 1, [][]int{{69}})
	// Set the two bytes above bit 69 in the final word of the single row.
	buf[len(buf)-1] = 0xff
	f, _, err := Split(buf)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := f.WindowResp()
	if err != nil {
		t.Fatal(err)
	}
	if got := wr.AppendHappy(nil, 0); !reflect.DeepEqual(got, []int{69}) {
		t.Fatalf("stray high bits leaked into the happy set: %v", got)
	}
	if bm := wr.AppendBitmap(nil, 0); bm.Count() != 1 || !bm.Test(69) {
		t.Fatalf("stray high bits leaked into the bitmap: %x", bm)
	}
}

func TestChurnRoundTrip(t *testing.T) {
	buf := AppendChurnReq(nil, ChurnInsert, "demo", 3, 9)
	buf = AppendChurnReq(buf, ChurnDelete, "café", 0, 1<<30)
	buf = AppendChurnResp(buf, true, false)
	buf = AppendChurnResp(buf, true, true)
	buf = AppendChurnResp(buf, false, false)

	f, rest, err := Split(buf)
	if err != nil {
		t.Fatal(err)
	}
	op, id, u, v, err := f.ChurnReq()
	if err != nil || op != ChurnInsert || id != "demo" || u != 3 || v != 9 {
		t.Fatalf("ChurnReq = %d %q %d %d (%v)", op, id, u, v, err)
	}
	f, rest, err = Split(rest)
	if err != nil {
		t.Fatal(err)
	}
	op, id, u, v, err = f.ChurnReq()
	if err != nil || op != ChurnDelete || id != "café" || u != 0 || v != 1<<30 {
		t.Fatalf("ChurnReq = %d %q %d %d (%v)", op, id, u, v, err)
	}
	for _, want := range [][2]bool{{true, false}, {true, true}, {false, false}} {
		f, rest, err = Split(rest)
		if err != nil {
			t.Fatal(err)
		}
		applied, recolored, err := f.ChurnResp()
		if err != nil || applied != want[0] || recolored != want[1] {
			t.Fatalf("ChurnResp = %v %v (%v), want %v", applied, recolored, err, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after the last frame", len(rest))
	}
}

// TestChurnDecodersReject: malformed churn bodies and wrong kinds must fail
// with errors naming the problem.
func TestChurnDecodersReject(t *testing.T) {
	req, _, _ := Split(AppendChurnReq(nil, ChurnInsert, "c", 0, 1))
	resp, _, _ := Split(AppendChurnResp(nil, true, true))
	if _, _, _, _, err := resp.ChurnReq(); err == nil {
		t.Fatal("ChurnReq decoded a churn response")
	}
	if _, _, err := req.ChurnResp(); err == nil {
		t.Fatal("ChurnResp decoded a churn request")
	}
	// Unknown op byte: offset 4(len)+4(header) is the op.
	if f, _, err := Split(mutate(AppendChurnReq(nil, ChurnInsert, "c", 0, 1), 8, 7)); err != nil {
		t.Fatal(err)
	} else if _, _, _, _, err := f.ChurnReq(); err == nil || !strings.Contains(err.Error(), "unknown churn op") {
		t.Fatalf("ChurnReq accepted op 7: %v", err)
	}
	// Id length pointing past the body: idLen u16 follows the op byte.
	if f, _, err := Split(mutate(AppendChurnReq(nil, ChurnInsert, "c", 0, 1), 9, 200)); err != nil {
		t.Fatal(err)
	} else if _, _, _, _, err := f.ChurnReq(); err == nil {
		t.Fatal("ChurnReq accepted an id length past the body")
	}
	// Flags with unknown bits set: offset 8 is the flags byte.
	if f, _, err := Split(mutate(AppendChurnResp(nil, false, false), 8, 0x80)); err != nil {
		t.Fatal(err)
	} else if _, _, err := f.ChurnResp(); err == nil || !strings.Contains(err.Error(), "unknown bits") {
		t.Fatalf("ChurnResp accepted stray flag bits: %v", err)
	}
}

// TestSplitRejects enumerates the framing violations Split must catch, each
// with an error message naming the problem.
func TestSplitRejects(t *testing.T) {
	good := AppendNextResp(nil, 7)
	cases := map[string]struct {
		data []byte
		want string
	}{
		"empty":          {nil, "too short"},
		"short":          {good[:6], "too short"},
		"truncated":      {good[:len(good)-2], "truncated"},
		"bad magic":      {mutate(good, 4, 'X'), "bad magic"},
		"bad version":    {mutate(good, 6, 99), "version"},
		"unknown kind":   {mutate(good, 7, 42), "unknown frame kind"},
		"zero kind":      {mutate(good, 7, 0), "unknown frame kind"},
		"tiny payload":   {mutate(good, 0, 2), "shorter than its header"},
		"huge payload":   {mutate(mutate(mutate(mutate(good, 0, 0xff), 1, 0xff), 2, 0xff), 3, 0xff), "exceeds MaxFrame"},
		"inflated bytes": {mutate(good, 0, byte(len(good))), "truncated"},
	}
	for name, tc := range cases {
		_, _, err := Split(tc.data)
		if err == nil {
			t.Fatalf("%s: Split accepted %x", name, tc.data)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// mutate returns a copy of b with b[i] = v.
func mutate(b []byte, i int, v byte) []byte {
	c := append([]byte(nil), b...)
	c[i] = v
	return c
}

// TestBodyDecodersReject: per-kind decoders must reject wrong kinds and
// malformed bodies.
func TestBodyDecodersReject(t *testing.T) {
	winReq, _, _ := Split(AppendWindowReq(nil, "c", 1, 2))
	nextReq, _, _ := Split(AppendNextReq(nil, "c", 0, 1))
	if _, _, _, err := winReq.NextReq(); err == nil {
		t.Fatal("NextReq decoded a window request")
	}
	if _, _, _, err := nextReq.WindowReq(); err == nil {
		t.Fatal("WindowReq decoded a next request")
	}
	if _, err := winReq.WindowResp(); err == nil {
		t.Fatal("WindowResp decoded a window request")
	}
	// A window response whose rows field disagrees with the row payload:
	// the frame is well-framed, the body internally inconsistent.
	lying := encodeWindowResp(nil, 70, 1, [][]int{{1}, {2}})
	lying[20]++ // rows u32 lives at offset 4(len)+4(header)+4(n)+8(from)
	f, _, err := Split(lying)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = f.WindowResp(); err == nil {
		t.Fatal("WindowResp accepted a rows count disagreeing with the payload")
	}
	// An id length pointing past the declared body.
	bad := AppendWindowReq(nil, "abcdef", 1, 2)
	bad[8] += 24 // id length u16 lives right after the header; 30 > the 22 body bytes left
	if f, _, err = Split(bad); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err = f.WindowReq(); err == nil {
		t.Fatal("WindowReq accepted an id length past the body")
	}
}

// TestAppendErrorTruncates: over-long messages are capped, not torn.
func TestAppendErrorTruncates(t *testing.T) {
	long := strings.Repeat("x", 4*maxErrMsg)
	f, rest, err := Split(AppendError(nil, 500, 5, long))
	if err != nil || len(rest) != 0 {
		t.Fatalf("Split: %v", err)
	}
	status, code, msg, err := f.ErrorResp()
	if err != nil || status != 500 || code != 5 || len(msg) != maxErrMsg {
		t.Fatalf("ErrorResp = %d %d, %d bytes (%v)", status, code, len(msg), err)
	}
}

// TestReplicationRoundTrip covers the replication stream kinds (8–11) both
// through Split and through the streaming ReadFrame reader.
func TestReplicationRoundTrip(t *testing.T) {
	recs := []RawRecord{
		{Seq: 1, Data: []byte(`{"op":"marry"}`)},
		{Seq: 2, Data: nil},
		{Seq: 9, Data: []byte(`{"op":"divorce","u":3}`)},
	}
	buf := AppendSubscribe(nil, 42, "node-b")
	buf = AppendSnapshot(buf, 17, []byte(`{"id":"demo"}`))
	buf = AppendRecords(buf, recs)
	buf = AppendHeartbeat(buf, 99)

	f, rest, err := Split(buf)
	if err != nil {
		t.Fatal(err)
	}
	fromSeq, node, err := f.Subscribe()
	if err != nil || fromSeq != 42 || node != "node-b" {
		t.Fatalf("Subscribe = %d %q (%v)", fromSeq, node, err)
	}
	f, rest, err = Split(rest)
	if err != nil {
		t.Fatal(err)
	}
	cutoff, state, err := f.Snapshot()
	if err != nil || cutoff != 17 || string(state) != `{"id":"demo"}` {
		t.Fatalf("Snapshot = %d %q (%v)", cutoff, state, err)
	}
	f, rest, err = Split(rest)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Records(nil)
	if err != nil || len(got) != len(recs) {
		t.Fatalf("Records decoded %d records (%v), want %d", len(got), err, len(recs))
	}
	for i, r := range recs {
		if got[i].Seq != r.Seq || string(got[i].Data) != string(r.Data) {
			t.Fatalf("record %d = %d %q, want %d %q", i, got[i].Seq, got[i].Data, r.Seq, r.Data)
		}
	}
	f, rest, err = Split(rest)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := f.Heartbeat()
	if err != nil || seq != 99 {
		t.Fatalf("Heartbeat = %d (%v)", seq, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after the last frame", len(rest))
	}

	// The same stream through the io.Reader path, reusing one buffer.
	r := strings.NewReader(string(buf))
	var rb []byte
	var kinds []Kind
	for {
		var fr Frame
		fr, rb, err = ReadFrame(r, rb)
		if err != nil {
			break
		}
		kinds = append(kinds, fr.Kind)
	}
	want := []Kind{KindSubscribe, KindSnapshot, KindRecords, KindHeartbeat}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("ReadFrame saw kinds %v, want %v", kinds, want)
	}
}

// TestReplicationDecodersReject: malformed replication bodies must fail with
// errors naming the problem, and wrong kinds must be refused.
func TestReplicationDecodersReject(t *testing.T) {
	sub, _, _ := Split(AppendSubscribe(nil, 1, "n"))
	hb, _, _ := Split(AppendHeartbeat(nil, 1))
	if _, _, err := hb.Subscribe(); err == nil {
		t.Fatal("Subscribe decoded a heartbeat")
	}
	if _, err := sub.Heartbeat(); err == nil {
		t.Fatal("Heartbeat decoded a subscribe")
	}
	if _, err := sub.Records(nil); err == nil {
		t.Fatal("Records decoded a subscribe")
	}
	if _, _, err := sub.Snapshot(); err == nil {
		t.Fatal("Snapshot decoded a subscribe")
	}
	// A records frame whose count exceeds the records present: count u32
	// lives at offset 4(len)+4(header).
	lying := AppendRecords(nil, []RawRecord{{Seq: 1, Data: []byte("x")}})
	if f, _, err := Split(mutate(lying, 8, 2)); err != nil {
		t.Fatal(err)
	} else if _, err := f.Records(nil); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("Records accepted a lying count: %v", err)
	}
	// A record whose declared length runs past the body: the first record's
	// len u32 follows count(4)+seq(8) at offset 8+4+8.
	if f, _, err := Split(mutate(lying, 20, 200)); err != nil {
		t.Fatal(err)
	} else if _, err := f.Records(nil); err == nil {
		t.Fatal("Records accepted a record length past the body")
	}
	// A snapshot whose state length disagrees with the body: len u32 follows
	// cutoff(8) at offset 8+8.
	snap := AppendSnapshot(nil, 1, []byte("state"))
	if f, _, err := Split(mutate(snap, 16, 200)); err != nil {
		t.Fatal(err)
	} else if _, _, err := f.Snapshot(); err == nil {
		t.Fatal("Snapshot accepted a state length disagreeing with the body")
	}
}

// TestReadFrameRejects: the streaming reader must enforce the same framing
// rules as Split and surface clean EOF at a frame boundary.
func TestReadFrameRejects(t *testing.T) {
	good := AppendHeartbeat(nil, 7)
	if _, _, err := ReadFrame(strings.NewReader(""), nil); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	if _, _, err := ReadFrame(strings.NewReader(string(good[:6])), nil); err == nil {
		t.Fatal("ReadFrame accepted a truncated frame")
	}
	for name, tc := range map[string]struct {
		data []byte
		want string
	}{
		"bad magic":    {mutate(good, 4, 'X'), "bad magic"},
		"bad version":  {mutate(good, 6, 99), "version"},
		"unknown kind": {mutate(good, 7, 42), "unknown frame kind"},
		"tiny payload": {mutate(good, 0, 2), "shorter than its header"},
		"huge payload": {mutate(mutate(mutate(mutate(good, 0, 0xff), 1, 0xff), 2, 0xff), 3, 0xff), "exceeds MaxFrame"},
	} {
		_, _, err := ReadFrame(strings.NewReader(string(tc.data)), nil)
		if err == nil {
			t.Fatalf("%s: ReadFrame accepted %x", name, tc.data)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}
