package wire

import (
	"strings"
	"testing"
)

// TestHandoffRoundTrip: the two live-handoff frames survive encode/decode
// with every field intact, including empty table/state payloads.
func TestHandoffRoundTrip(t *testing.T) {
	table := []byte(`{"epoch":9,"nodes":[{"id":"a"}]}`)
	state := []byte(`{"id":"demo","seq":41}`)
	buf := AppendHandoffOffer(nil, 9, "demo", table, state)
	buf = AppendHandoffOffer(buf, 0, "café", nil, nil)
	buf = AppendHandoffAck(buf, 41, "demo")

	f, rest, err := Split(buf)
	if err != nil {
		t.Fatalf("split offer: %v", err)
	}
	epoch, id, gotTable, gotState, err := f.HandoffOffer()
	if err != nil {
		t.Fatalf("decode offer: %v", err)
	}
	if epoch != 9 || id != "demo" || string(gotTable) != string(table) || string(gotState) != string(state) {
		t.Fatalf("offer round-trip: epoch=%d id=%q table=%q state=%q", epoch, id, gotTable, gotState)
	}

	f, rest, err = Split(rest)
	if err != nil {
		t.Fatalf("split empty offer: %v", err)
	}
	epoch, id, gotTable, gotState, err = f.HandoffOffer()
	if err != nil {
		t.Fatalf("decode empty offer: %v", err)
	}
	if epoch != 0 || id != "café" || len(gotTable) != 0 || len(gotState) != 0 {
		t.Fatalf("empty offer round-trip: epoch=%d id=%q table=%d state=%d bytes", epoch, id, len(gotTable), len(gotState))
	}

	f, rest, err = Split(rest)
	if err != nil {
		t.Fatalf("split ack: %v", err)
	}
	seq, id, err := f.HandoffAck()
	if err != nil {
		t.Fatalf("decode ack: %v", err)
	}
	if seq != 41 || id != "demo" {
		t.Fatalf("ack round-trip: seq=%d id=%q", seq, id)
	}
	if len(rest) != 0 {
		t.Fatalf("%d stray bytes after the last frame", len(rest))
	}
}

// TestHandoffDecodersReject: wrong kinds and truncated bodies fail loudly
// rather than mis-decode.
func TestHandoffDecodersReject(t *testing.T) {
	ack := mustSplitOne(t, AppendHandoffAck(nil, 7, "demo"))
	if _, _, _, _, err := ack.HandoffOffer(); err == nil {
		t.Fatal("HandoffOffer decoded an ack frame")
	}
	offer := mustSplitOne(t, AppendHandoffOffer(nil, 7, "demo", []byte("t"), []byte("s")))
	if _, _, err := offer.HandoffAck(); err == nil {
		t.Fatal("HandoffAck decoded an offer frame")
	}

	// Truncations at every boundary of the offer body.
	full := AppendHandoffOffer(nil, 7, "demo", []byte("table"), []byte("state"))
	whole := mustSplitOne(t, full)
	for cut := 0; cut < len(whole.Body); cut++ {
		f := Frame{Kind: KindHandoffOffer, Body: whole.Body[:cut]}
		if _, _, _, _, err := f.HandoffOffer(); err == nil {
			t.Fatalf("offer body truncated to %d bytes decoded", cut)
		}
	}
	for cut := 0; cut < len(ack.Body); cut++ {
		f := Frame{Kind: KindHandoffAck, Body: ack.Body[:cut]}
		if _, _, err := f.HandoffAck(); err == nil {
			t.Fatalf("ack body truncated to %d bytes decoded", cut)
		}
	}
	// Trailing garbage on an ack is a framing error, not ignorable.
	f := Frame{Kind: KindHandoffAck, Body: append(append([]byte{}, ack.Body...), 0)}
	if _, _, err := f.HandoffAck(); err == nil {
		t.Fatal("ack with trailing bytes decoded")
	}
	// An oversized declared table length must not panic or mis-slice.
	bad := mustSplitOne(t, AppendHandoffOffer(nil, 7, "demo", []byte(strings.Repeat("x", 8)), nil))
	bad.Body[8+2+4+1] = 0xFF // inflate the table length field
	if _, _, _, _, err := bad.HandoffOffer(); err == nil {
		t.Fatal("offer with an inflated table length decoded")
	}
}

func mustSplitOne(t *testing.T, buf []byte) Frame {
	t.Helper()
	f, rest, err := Split(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("split: %v (%d rest)", err, len(rest))
	}
	return f
}
