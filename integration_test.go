package holiday_test

import (
	"testing"

	holiday "repro"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/prefixcode"
)

// Integration: the full distributed pipeline end to end — LOCAL-model
// coloring initialization, scheduler construction, horizon analysis with
// independence verification, the §1 schedule→coloring reduction, and
// re-scheduling from the extracted coloring. Exercised over every graph
// family and every algorithm exposed by the facade.
func TestFullPipelineOnAllFamiliesAndAlgorithms(t *testing.T) {
	families := map[string]*graph.Graph{
		"clique":    graph.Clique(12),
		"cycle":     graph.Cycle(31),
		"star":      graph.Star(24),
		"grid":      graph.Grid(6, 7),
		"gnp":       graph.GNP(120, 0.05, 1),
		"tree":      graph.RandomTree(90, 2),
		"regular":   graph.RandomRegular(60, 4, 3),
		"powerlaw":  graph.PreferentialAttachment(100, 2, 4),
		"bipartite": graph.RandomBipartite(30, 30, 0.1, 5),
	}
	for name, g := range families {
		// Stage 1: distributed initialization on the LOCAL simulator.
		col, stats, err := coloring.DistributedDelta1(g, 11)
		if err != nil {
			t.Fatalf("%s: distributed coloring: %v", name, err)
		}
		if err := coloring.VerifyDegreeBounded(g, col); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.M() > 0 && stats.Messages == 0 {
			t.Fatalf("%s: no messages recorded for distributed coloring", name)
		}
		// Stage 2: every algorithm over that coloring.
		for _, algo := range holiday.Algorithms() {
			s, err := holiday.New(g, algo, holiday.WithColoring(col), holiday.WithSeed(13))
			if err != nil {
				t.Fatalf("%s/%s: %v", name, algo, err)
			}
			horizon := int64(4 * (g.MaxDegree() + 2))
			rep := holiday.Analyze(s, g, horizon)
			if rep.IndependenceViolations != 0 {
				t.Fatalf("%s/%s: %d dependent happy sets", name, algo, rep.IndependenceViolations)
			}
			// Per-algorithm bound spot checks.
			switch algo {
			case holiday.PhasedGreedy, holiday.PhasedGreedyDistributed:
				if err := rep.CheckBound(func(nr holiday.NodeReport) int64 {
					return int64(nr.Degree)
				}); err != nil {
					t.Fatalf("%s/%s: Theorem 3.1: %v", name, algo, err)
				}
			case holiday.DegreeBound, holiday.DegreeBoundDistributed:
				p := s.(holiday.Periodic)
				for v := 0; v < g.N(); v++ {
					if d := g.Degree(v); d >= 1 && p.Period(v) > int64(2*d) {
						t.Fatalf("%s/%s: Theorem 5.3: node %d period %d > 2d", name, algo, v, p.Period(v))
					}
				}
			}
		}
		// Stage 3: the §1 reduction — extract a coloring from a fresh
		// phased-greedy schedule and schedule again on top of it.
		pg, err := core.NewPhasedGreedy(g, col)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		extracted, err := core.ExtractColoring(pg, g, int64(g.MaxDegree()+1))
		if err != nil {
			t.Fatalf("%s: reduction: %v", name, err)
		}
		cb, err := core.NewColorBound(g, extracted, prefixcode.Omega{})
		if err != nil {
			t.Fatalf("%s: rescheduling on extracted coloring: %v", name, err)
		}
		rep := holiday.Analyze(cb, g, 256)
		if rep.IndependenceViolations != 0 {
			t.Fatalf("%s: rescheduled color-bound emitted dependent sets", name)
		}
	}
}

// Integration: schedules over the same graph from different algorithms must
// never disagree about feasibility — every holiday of every algorithm is an
// independent set, and every node is eventually happy under each.
func TestEveryNodeEventuallyHappyEverywhere(t *testing.T) {
	g := graph.GNP(80, 0.06, 21)
	for _, algo := range holiday.Algorithms() {
		s, err := holiday.New(g, algo, holiday.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		// First-grab is randomized: give it a generous horizon.
		horizon := int64(64 * (g.MaxDegree() + 2))
		rep := holiday.Analyze(s, g, horizon)
		for _, nr := range rep.Nodes {
			if nr.HappyCount == 0 {
				t.Errorf("%s: node %d (degree %d) never happy in %d holidays",
					algo, nr.Node, nr.Degree, horizon)
			}
		}
	}
}
