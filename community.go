package holiday

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Community is a friendly builder for the in-law conflict graph: families
// are referred to by name and an edge is added per marriage between the
// children of two families.
type Community struct {
	builder *graph.Builder
	names   []string
	index   map[string]int
}

// NewCommunity returns an empty community.
func NewCommunity() *Community {
	return &Community{builder: graph.NewBuilder(0), index: make(map[string]int)}
}

// AddFamily registers a family and returns its node id; adding an existing
// name returns the existing id.
func (c *Community) AddFamily(name string) int {
	if id, ok := c.index[name]; ok {
		return id
	}
	id := len(c.names)
	c.names = append(c.names, name)
	c.index[name] = id
	c.builder.Grow(id + 1)
	return id
}

// Marry records a marriage between a child of family a and a child of
// family b, creating the families as needed. Marrying a family to itself is
// an error (the paper notes sibling marriages only simplify the problem —
// they create no conflict).
func (c *Community) Marry(a, b string) error {
	if a == b {
		return fmt.Errorf("holiday: a marriage inside family %q creates no in-law conflict", a)
	}
	ia, ib := c.AddFamily(a), c.AddFamily(b)
	c.builder.AddEdge(ia, ib)
	return nil
}

// MustMarry is Marry, panicking on error; for examples and tests.
func (c *Community) MustMarry(a, b string) {
	if err := c.Marry(a, b); err != nil {
		panic(err)
	}
}

// Size returns the number of families.
func (c *Community) Size() int { return len(c.names) }

// Graph freezes the community into the conflict graph.
func (c *Community) Graph() *Graph { return c.builder.Graph() }

// FamilyName returns the name of node id.
func (c *Community) FamilyName(id int) string { return c.names[id] }

// FamilyID returns the node of a family name, or -1.
func (c *Community) FamilyID(name string) int {
	if id, ok := c.index[name]; ok {
		return id
	}
	return -1
}

// Names maps node ids to family names, sorted alphabetically — convenient
// for printing happy sets.
func (c *Community) Names(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = c.names[id]
	}
	sort.Strings(out)
	return out
}
