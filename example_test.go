package holiday_test

import (
	"fmt"

	holiday "repro"
	"repro/internal/graph"
)

// The smallest possible community: two couples sharing the Cohen family.
func ExampleNew() {
	c := holiday.NewCommunity()
	c.MustMarry("Cohen", "Levi")
	c.MustMarry("Cohen", "Mizrahi")

	s, err := holiday.New(c.Graph(), holiday.DegreeBound)
	if err != nil {
		panic(err)
	}
	for year := 1; year <= 4; year++ {
		fmt.Printf("year %d: %v\n", year, c.Names(s.Next()))
	}
	// Output:
	// year 1: [Levi Mizrahi]
	// year 2: []
	// year 3: [Levi Mizrahi]
	// year 4: [Cohen]
}

// Periodic schedulers expose each family's exact hosting period.
func ExamplePeriodic() {
	g := graph.Star(6) // one family with five married children
	s, err := holiday.New(g, holiday.DegreeBound)
	if err != nil {
		panic(err)
	}
	p := s.(holiday.Periodic)
	fmt.Println("center period:", p.Period(0))
	fmt.Println("leaf period:  ", p.Period(1))
	// Output:
	// center period: 8
	// leaf period:   2
}

// Analyze verifies independence every holiday and reports realized waits.
func ExampleAnalyze() {
	g := graph.Cycle(8)
	s, err := holiday.New(g, holiday.PhasedGreedy)
	if err != nil {
		panic(err)
	}
	rep := holiday.Analyze(s, g, 50)
	worst := int64(0)
	for _, nr := range rep.Nodes {
		if nr.MaxUnhappyRun > worst {
			worst = nr.MaxUnhappyRun
		}
	}
	fmt.Println("violations:", rep.IndependenceViolations)
	fmt.Println("within Theorem 3.1 bound:", worst <= 2)
	// Output:
	// violations: 0
	// within Theorem 3.1 bound: true
}
