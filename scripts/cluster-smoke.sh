#!/usr/bin/env bash
# cluster-smoke.sh — boot a 3-node holidayd cluster, replicate, kill the
# owner of a hot community, promote a survivor per topology, and require
# byte-for-byte identical window/next answers across the failover.
#
# Run from the repo root. Builds into a temp dir; cleans up on every exit.
set -euo pipefail

WORK=$(mktemp -d)
BIN="$WORK/bin"
mkdir -p "$BIN"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
fail() {
  echo "FAIL: $1" >&2
  for n in a b c; do
    echo "--- $n.log ---" >&2
    cat "$WORK/$n.log" >&2 || true
  done
  exit 1
}
trap cleanup EXIT

go build -o "$BIN/holidayd" ./cmd/holidayd
go build -o "$BIN/holidayctl" ./cmd/holidayctl

cat > "$WORK/nodes.json" <<'EOF'
{
  "nodes": [
    {"id": "a", "addr": "http://127.0.0.1:18081", "repl": "127.0.0.1:19091"},
    {"id": "b", "addr": "http://127.0.0.1:18082", "repl": "127.0.0.1:19092"},
    {"id": "c", "addr": "http://127.0.0.1:18083", "repl": "127.0.0.1:19093"}
  ]
}
EOF

declare -A ADDR=([a]=http://127.0.0.1:18081 [b]=http://127.0.0.1:18082 [c]=http://127.0.0.1:18083)
declare -A PID

start_node() {
  local id=$1
  "$BIN/holidayd" -addr "${ADDR[$id]#http://}" -node-id "$id" \
    -peers "$WORK/nodes.json" -follow all \
    -data-dir "$WORK/data-$id" >"$WORK/$id.log" 2>&1 &
  PID[$id]=$!
  PIDS+=($!)
}

for n in a b c; do start_node "$n"; done

await_healthy() {
  for i in $(seq 1 60); do
    curl -sf "$1/healthz" >/dev/null && return 0
    sleep 0.25
  done
  fail "node at $1 never became healthy"
}
for n in a b c; do await_healthy "${ADDR[$n]}"; done

# Create communities through one node; misplaced creates forward to their
# placed owner server-side.
COMMS=(comm-0 comm-1 comm-2 comm-3 comm-4 comm-5)
for id in "${COMMS[@]}"; do
  curl -sf -X POST "${ADDR[a]}/v1/communities" -d "{\"id\":\"$id\",\"families\":8}" >/dev/null \
    || fail "create $id"
done

# Churn every community so replication carries real records, and remember
# each owner's acked sequence.
for id in "${COMMS[@]}"; do
  for i in 1 2 3; do
    curl -sf -X POST "${ADDR[b]}/v1/communities/$id/churn" \
      -d '[{"op":"marry","u":0,"v":'"$i"'},{"op":"marry","u":'"$i"',"v":'"$((i+1))"'}]' >/dev/null \
      || fail "churn $id"
  done
done

# Pick the hot community and find its owner from the topology.
HOT=comm-0
OWNER=$("$BIN/holidayctl" -topology "$WORK/nodes.json" place "$HOT" | awk '{print $3}')
echo "hot community $HOT is owned by node $OWNER"

owner_seq() {
  curl -sf "${ADDR[$1]}/v1/status" \
    | jq -r --arg id "$2" '.communities[] | select(.id==$id) | .seq'
}

# Wait until every follower holds HOT at the owner's sequence.
WANT=$(owner_seq "$OWNER" "$HOT")
[ -n "$WANT" ] || fail "owner has no sequence for $HOT"
for n in a b c; do
  [ "$n" = "$OWNER" ] && continue
  for i in $(seq 1 120); do
    got=$(owner_seq "$n" "$HOT" || true)
    [ "$got" = "$WANT" ] && break
    sleep 0.25
    [ "$i" = 120 ] && fail "node $n never replicated $HOT to seq $WANT (at: ${got:-none})"
  done
done
echo "replication caught up: $HOT at seq $WANT on all nodes"

# Pre-kill captures — the failover must reproduce these byte-for-byte.
curl -sf "${ADDR[$OWNER]}/v1/communities/$HOT/window?from=1&to=100" > "$WORK/window.pre" \
  || fail "pre-kill window"
curl -sf "${ADDR[$OWNER]}/v1/communities/$HOT/families/3/next?from=1" > "$WORK/next.pre" \
  || fail "pre-kill next"

# Followers must already serve identical bytes (replica reads).
for n in a b c; do
  [ "$n" = "$OWNER" ] && continue
  curl -sf "${ADDR[$n]}/v1/communities/$HOT/window?from=1&to=100" > "$WORK/window.$n"
  cmp -s "$WORK/window.pre" "$WORK/window.$n" || fail "replica window on $n differs from owner before the kill"
done

# Kill the owner, hard.
kill -9 "${PID[$OWNER]}" || fail "kill owner"
echo "killed owner $OWNER"

# Promote: the first surviving node in topology order takes over.
for n in a b c; do
  if [ "$n" != "$OWNER" ]; then PROMOTE=$n; break; fi
done
"$BIN/holidayctl" -topology "$WORK/nodes.json" promote "$HOT" "$PROMOTE" \
  || fail "promote $HOT to $PROMOTE"
echo "promoted $HOT on $PROMOTE"

# Post-failover answers must be byte-identical to the pre-kill captures.
curl -sf "${ADDR[$PROMOTE]}/v1/communities/$HOT/window?from=1&to=100" > "$WORK/window.post" \
  || fail "post-failover window"
curl -sf "${ADDR[$PROMOTE]}/v1/communities/$HOT/families/3/next?from=1" > "$WORK/next.post" \
  || fail "post-failover next"
cmp -s "$WORK/window.pre" "$WORK/window.post" || fail "window answer changed across failover"
cmp -s "$WORK/next.pre" "$WORK/next.post" || fail "next answer changed across failover"

# The promoted node now takes writes for the community.
curl -sf -X POST "${ADDR[$PROMOTE]}/v1/communities/$HOT/churn" \
  -d '[{"op":"divorce","u":0,"v":1}]' >/dev/null \
  || fail "write to promoted node"

"$BIN/holidayctl" -topology "$WORK/nodes.json" status || true
echo "cluster smoke OK: replication, kill, promote, byte-identical failover"
