#!/usr/bin/env bash
# cluster-smoke.sh — three failover legs against real holidayd clusters:
#
#   leg 1  break-glass: detector disabled (-failover-after 0), SIGKILL the
#          owner, operator promotes a survivor, answers byte-identical.
#   leg 2  no-operator: detector armed, SIGKILL the owner, a survivor
#          self-promotes the hot community with ZERO holidayctl calls,
#          answers byte-identical across the automatic failover.
#   leg 3  join-rebalance: a fourth node joins, holidayctl rebalance
#          live-moves its communities over epoch-bumped handoffs, every
#          community answers byte-identically afterwards.
#
# Run from the repo root. Builds into a temp dir; cleans up on every exit.
set -euo pipefail

WORK=$(mktemp -d)
BIN="$WORK/bin"
mkdir -p "$BIN"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
fail() {
  echo "FAIL: $1" >&2
  for log in "$WORK"/*.log; do
    echo "--- $(basename "$log") ---" >&2
    tail -40 "$log" >&2 || true
  done
  exit 1
}
trap cleanup EXIT

go build -o "$BIN/holidayd" ./cmd/holidayd
go build -o "$BIN/holidayctl" ./cmd/holidayctl

declare -A ADDR=(
  [a]=http://127.0.0.1:18081 [b]=http://127.0.0.1:18082
  [c]=http://127.0.0.1:18083 [d]=http://127.0.0.1:18084
)
declare -A REPL=(
  [a]=127.0.0.1:19091 [b]=127.0.0.1:19092
  [c]=127.0.0.1:19093 [d]=127.0.0.1:19094
)
declare -A PID

write_topology() { # write_topology <file> <node>...
  local file=$1; shift
  {
    echo '{"nodes": ['
    local sep=""
    for n in "$@"; do
      printf '%s{"id": "%s", "addr": "%s", "repl": "%s"}' "$sep" "$n" "${ADDR[$n]}" "${REPL[$n]}"
      sep=$',\n'
    done
    echo $'\n]}'
  } > "$file"
}

start_node() { # start_node <leg> <id> <topology> <failover-after>
  local leg=$1 id=$2 topo=$3 fo=$4
  "$BIN/holidayd" -addr "${ADDR[$id]#http://}" -node-id "$id" \
    -peers "$topo" -follow all -failover-after "$fo" \
    -data-dir "$WORK/$leg-data-$id" >"$WORK/$leg-$id.log" 2>&1 &
  PID[$id]=$!
  PIDS+=($!)
}

await_healthy() {
  for i in $(seq 1 60); do
    curl -sf "$1/healthz" >/dev/null && return 0
    sleep 0.25
  done
  fail "node at $1 never became healthy"
}

stop_cluster() { # stop nodes and wait until their ports are released
  for n in "$@"; do kill "${PID[$n]}" 2>/dev/null || true; done
  for n in "$@"; do
    for i in $(seq 1 40); do
      curl -sf --max-time 1 "${ADDR[$n]}/healthz" >/dev/null 2>&1 || break
      sleep 0.25
    done
  done
}

COMMS=(comm-0 comm-1 comm-2 comm-3 comm-4 comm-5)

seed_cluster() { # create and churn every community through one node
  local via=$1
  for id in "${COMMS[@]}"; do
    curl -sf -X POST "${ADDR[$via]}/v1/communities" -d "{\"id\":\"$id\",\"families\":8}" >/dev/null \
      || fail "create $id"
  done
  for id in "${COMMS[@]}"; do
    for i in 1 2 3; do
      curl -sf -X POST "${ADDR[$via]}/v1/communities/$id/churn" \
        -d '[{"op":"marry","u":0,"v":'"$i"'},{"op":"marry","u":'"$i"',"v":'"$((i+1))"'}]' >/dev/null \
        || fail "churn $id"
    done
  done
}

comm_seq() { # comm_seq <node> <community> — seq from a node's status
  curl -sf "${ADDR[$1]}/v1/status" \
    | jq -r --arg id "$2" '.communities[] | select(.id==$id) | .seq'
}

comm_role() { # comm_role <node> <community>
  curl -sf "${ADDR[$1]}/v1/status" 2>/dev/null \
    | jq -r --arg id "$2" '.communities[] | select(.id==$id) | .role' 2>/dev/null || true
}

await_replication() { # await_replication <owner> <community> <node>...
  local owner=$1 hot=$2; shift 2
  local want
  want=$(comm_seq "$owner" "$hot")
  [ -n "$want" ] || fail "owner has no sequence for $hot"
  for n in "$@"; do
    [ "$n" = "$owner" ] && continue
    for i in $(seq 1 120); do
      got=$(comm_seq "$n" "$hot" || true)
      [ "$got" = "$want" ] && break
      sleep 0.25
      [ "$i" = 120 ] && fail "node $n never replicated $hot to seq $want (at: ${got:-none})"
    done
  done
}

# ---------------------------------------------------------------- leg 1 ---
echo "=== leg 1: break-glass promote (detector disabled) ==="
TOPO1="$WORK/leg1-nodes.json"
write_topology "$TOPO1" a b c
for n in a b c; do start_node leg1 "$n" "$TOPO1" 0; done
for n in a b c; do await_healthy "${ADDR[$n]}"; done
seed_cluster a

HOT=comm-0
OWNER=$("$BIN/holidayctl" -topology "$TOPO1" place "$HOT" | awk '{print $3}')
echo "hot community $HOT is owned by node $OWNER"
await_replication "$OWNER" "$HOT" a b c

curl -sf "${ADDR[$OWNER]}/v1/communities/$HOT/window?from=1&to=100" > "$WORK/window.pre" \
  || fail "pre-kill window"
curl -sf "${ADDR[$OWNER]}/v1/communities/$HOT/families/3/next?from=1" > "$WORK/next.pre" \
  || fail "pre-kill next"
for n in a b c; do
  [ "$n" = "$OWNER" ] && continue
  curl -sf "${ADDR[$n]}/v1/communities/$HOT/window?from=1&to=100" > "$WORK/window.$n"
  cmp -s "$WORK/window.pre" "$WORK/window.$n" || fail "replica window on $n differs from owner before the kill"
done

kill -9 "${PID[$OWNER]}" || fail "kill owner"
echo "killed owner $OWNER"

for n in a b c; do
  if [ "$n" != "$OWNER" ]; then PROMOTE=$n; break; fi
done
"$BIN/holidayctl" -topology "$TOPO1" promote "$HOT" "$PROMOTE" \
  || fail "promote $HOT to $PROMOTE"
echo "promoted $HOT on $PROMOTE"

curl -sf "${ADDR[$PROMOTE]}/v1/communities/$HOT/window?from=1&to=100" > "$WORK/window.post" \
  || fail "post-failover window"
curl -sf "${ADDR[$PROMOTE]}/v1/communities/$HOT/families/3/next?from=1" > "$WORK/next.post" \
  || fail "post-failover next"
cmp -s "$WORK/window.pre" "$WORK/window.post" || fail "window answer changed across break-glass failover"
cmp -s "$WORK/next.pre" "$WORK/next.post" || fail "next answer changed across break-glass failover"
curl -sf -X POST "${ADDR[$PROMOTE]}/v1/communities/$HOT/churn" \
  -d '[{"op":"divorce","u":0,"v":1}]' >/dev/null \
  || fail "write to promoted node"
echo "leg 1 OK: break-glass promote, byte-identical answers"
stop_cluster a b c

# ---------------------------------------------------------------- leg 2 ---
echo "=== leg 2: no-operator failover (detector armed) ==="
TOPO2="$WORK/leg2-nodes.json"
write_topology "$TOPO2" a b c
for n in a b c; do start_node leg2 "$n" "$TOPO2" 2s; done
for n in a b c; do await_healthy "${ADDR[$n]}"; done
seed_cluster b

OWNER=$("$BIN/holidayctl" -topology "$TOPO2" place "$HOT" | awk '{print $3}')
echo "hot community $HOT is owned by node $OWNER"
await_replication "$OWNER" "$HOT" a b c

curl -sf "${ADDR[$OWNER]}/v1/communities/$HOT/window?from=1&to=100" > "$WORK/window2.pre" \
  || fail "pre-kill window"
curl -sf "${ADDR[$OWNER]}/v1/communities/$HOT/families/3/next?from=1" > "$WORK/next2.pre" \
  || fail "pre-kill next"

kill -9 "${PID[$OWNER]}" || fail "kill owner"
echo "killed owner $OWNER; waiting for automatic promotion (no operator calls)"

SURVIVORS=()
for n in a b c; do [ "$n" != "$OWNER" ] && SURVIVORS+=("$n"); done

NEWOWNER=""
for i in $(seq 1 120); do
  for n in "${SURVIVORS[@]}"; do
    if [ "$(comm_role "$n" "$HOT")" = "owner" ]; then NEWOWNER=$n; break 2; fi
  done
  sleep 0.25
done
[ -n "$NEWOWNER" ] || fail "no survivor self-promoted $HOT within 30s"
echo "node $NEWOWNER self-promoted $HOT"

curl -sf "${ADDR[$NEWOWNER]}/v1/communities/$HOT/window?from=1&to=100" > "$WORK/window2.post" \
  || fail "post-failover window"
curl -sf "${ADDR[$NEWOWNER]}/v1/communities/$HOT/families/3/next?from=1" > "$WORK/next2.post" \
  || fail "post-failover next"
cmp -s "$WORK/window2.pre" "$WORK/window2.post" || fail "window answer changed across automatic failover"
cmp -s "$WORK/next2.pre" "$WORK/next2.post" || fail "next answer changed across automatic failover"
curl -sf -X POST "${ADDR[$NEWOWNER]}/v1/communities/$HOT/churn" \
  -d '[{"op":"divorce","u":0,"v":1}]' >/dev/null \
  || fail "write to self-promoted node"
EPOCH=$(curl -sf "${ADDR[$NEWOWNER]}/v1/status" | jq -r '.epoch')
[ "$EPOCH" -ge 1 ] || fail "automatic failover did not advance the placement epoch (at $EPOCH)"
echo "leg 2 OK: automatic failover at epoch $EPOCH, byte-identical answers, zero operator calls"
stop_cluster "${SURVIVORS[@]}"

# ---------------------------------------------------------------- leg 3 ---
echo "=== leg 3: join-rebalance over live handoffs ==="
TOPO3="$WORK/leg3-nodes.json"
write_topology "$TOPO3" a b c
for n in a b c; do start_node leg3 "$n" "$TOPO3" 0; done
for n in a b c; do await_healthy "${ADDR[$n]}"; done
seed_cluster c

for id in "${COMMS[@]}"; do
  curl -sf "${ADDR[a]}/v1/communities/$id/window?from=1&to=100" > "$WORK/prejoin.$id" \
    || fail "pre-join window for $id"
done

# Join updates the topology file; the live rebalance inside can't reach the
# new node yet, so it degrades to the file edit (by design).
"$BIN/holidayctl" -topology "$TOPO3" join d "${ADDR[d]}" "${REPL[d]}" || fail "join d"
start_node leg3 d "$TOPO3" 0
await_healthy "${ADDR[d]}"

"$BIN/holidayctl" -topology "$TOPO3" rebalance || fail "rebalance onto d"

MOVED=$(curl -sf "${ADDR[d]}/v1/status" | jq -r '[.communities[] | select(.role=="owner")] | length')
echo "node d owns $MOVED communities after the rebalance"

# Every community answers byte-identically after the moves, wherever it
# now lives (reads forward to wherever the window can be served).
for id in "${COMMS[@]}"; do
  curl -sf "${ADDR[d]}/v1/communities/$id/window?from=1&to=100" > "$WORK/postjoin.$id" \
    || fail "post-join window for $id"
  cmp -s "$WORK/prejoin.$id" "$WORK/postjoin.$id" || fail "window for $id changed across the join-rebalance"
done

# Moved communities take writes at their new owner.
if [ "$MOVED" -gt 0 ]; then
  MOVED_ID=$(curl -sf "${ADDR[d]}/v1/status" | jq -r '[.communities[] | select(.role=="owner")][0].id')
  curl -sf -X POST "${ADDR[d]}/v1/communities/$MOVED_ID/churn" \
    -d '[{"op":"divorce","u":0,"v":1}]' >/dev/null \
    || fail "write to moved community $MOVED_ID on d"
fi
echo "leg 3 OK: join-rebalance moved $MOVED communities, byte-identical answers"

"$BIN/holidayctl" -topology "$TOPO3" status || true
echo "cluster smoke OK: break-glass, operator-free failover, join-rebalance"
