// Facade-level property tests of the Schedule abstraction: for every
// algorithm the facade exposes, every window of the random-access schedule
// must be byte-identical to replaying the scheduler's Next sequence, at
// every alignment — including windows that start nowhere near holiday 1.
package holiday_test

import (
	"reflect"
	"testing"

	holiday "repro"
	"repro/internal/graph"
)

// replayNext records a fresh scheduler's happy sets for holidays 1..horizon.
func replayNext(t *testing.T, g *graph.Graph, algo holiday.Algorithm, opts []holiday.Option, horizon int64) [][]int {
	t.Helper()
	s, err := holiday.New(g, algo, opts...)
	if err != nil {
		t.Fatalf("%s: %v", algo, err)
	}
	out := make([][]int, horizon)
	for tt := int64(1); tt <= horizon; tt++ {
		out[tt-1] = append([]int(nil), s.Next()...)
	}
	return out
}

// equalSets treats nil and empty happy sets as equal.
func equalSets(a, b []int) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestScheduleWindowMatchesNextReplay is the tentpole equivalence property:
// every Schedule.Window(from, to) must reproduce the sequential Next replay
// exactly, across all algorithms × seeds × window boundaries.
func TestScheduleWindowMatchesNextReplay(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp":   graph.GNP(72, 0.07, 19),
		"star":  graph.Star(17),
		"cycle": graph.Cycle(31),
	}
	const horizon = 1400 // beyond the replay memo, so backward seeks rewind
	windows := [][2]int64{
		{1, horizon},           // full pass
		{1, 1},                 // single first holiday
		{37, 211},              // interior, not starting at 1
		{512, 600},             // crosses the engine's sharding scale
		{horizon - 5, horizon}, // tail
	}
	for gname, g := range graphs {
		for _, algo := range holiday.Algorithms() {
			for _, seed := range []uint64{1, 7} {
				opts := []holiday.Option{holiday.WithSeed(seed)}
				want := replayNext(t, g, algo, opts, horizon)
				sched, err := holiday.NewSchedule(g, algo, opts...)
				if err != nil {
					t.Fatalf("%s/%s: %v", gname, algo, err)
				}
				for _, w := range windows {
					next := w[0]
					sched.Window(w[0], w[1], func(tt int64, happy []int) {
						if tt != next {
							t.Fatalf("%s/%s seed=%d: window [%d,%d] visited %d, want %d",
								gname, algo, seed, w[0], w[1], tt, next)
						}
						if !equalSets(happy, want[tt-1]) {
							t.Fatalf("%s/%s seed=%d: holiday %d: Window %v ≠ Next %v",
								gname, algo, seed, tt, happy, want[tt-1])
						}
						next++
					})
					if next != w[1]+1 {
						t.Fatalf("%s/%s seed=%d: window [%d,%d] ended at %d",
							gname, algo, seed, w[0], w[1], next)
					}
				}
				// Out-of-order access after the full pass: a backward window
				// must still match (replay schedules rewind via their factory).
				for _, w := range [][2]int64{{3, 9}, {1023, 1026}} {
					sched.Window(w[0], w[1], func(tt int64, happy []int) {
						if !equalSets(happy, want[tt-1]) {
							t.Fatalf("%s/%s seed=%d: re-read holiday %d: %v ≠ %v",
								gname, algo, seed, tt, happy, want[tt-1])
						}
					})
				}
			}
		}
	}
}

// TestScheduleNextHappyMatchesReplay: NextHappy must agree with the first
// occurrence in the Next replay for every algorithm.
func TestScheduleNextHappyMatchesReplay(t *testing.T) {
	g := graph.GNP(40, 0.1, 23)
	const horizon = 300
	for _, algo := range holiday.Algorithms() {
		opts := []holiday.Option{holiday.WithSeed(5)}
		want := replayNext(t, g, algo, opts, horizon)
		sched, err := holiday.NewSchedule(g, algo, opts...)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for v := 0; v < g.N(); v += 5 {
			for _, from := range []int64{1, 17, 150} {
				wantNext := int64(0)
				for tt := from; tt <= horizon; tt++ {
					for _, u := range want[tt-1] {
						if u == v {
							wantNext = tt
							break
						}
					}
					if wantNext != 0 {
						break
					}
				}
				if wantNext == 0 {
					continue // not happy within the recorded horizon
				}
				if got := sched.NextHappy(v, from); got != wantNext {
					t.Fatalf("%s: NextHappy(%d, %d) = %d, want %d", algo, v, from, got, wantNext)
				}
			}
		}
	}
}

// TestWithCodeUnknownName: a typoed prefix-code name must surface as an
// error from New instead of being silently replaced by the default.
func TestWithCodeUnknownName(t *testing.T) {
	g := graph.Star(5)
	if _, err := holiday.New(g, holiday.ColorBound, holiday.WithCode("omgea")); err == nil {
		t.Fatal("want error for unknown prefix-code name")
	}
	if _, err := holiday.NewSchedule(g, holiday.ColorBound, holiday.WithCode("nope")); err == nil {
		t.Fatal("want error for unknown prefix-code name via NewSchedule")
	}
	if _, err := holiday.New(g, holiday.ColorBound, holiday.WithCode("gamma")); err != nil {
		t.Fatalf("valid code rejected: %v", err)
	}
}

// TestAnalyzeScheduleMatchesAnalyze: analyzing through a Schedule must equal
// the classic scheduler analysis for every algorithm.
func TestAnalyzeScheduleMatchesAnalyze(t *testing.T) {
	g := graph.GNP(64, 0.08, 29)
	const horizon = 512
	for _, algo := range holiday.Algorithms() {
		s, err := holiday.New(g, algo, holiday.WithSeed(3))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		want := holiday.Analyze(s, g, horizon)
		sched, err := holiday.NewSchedule(g, algo, holiday.WithSeed(3))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if got := holiday.AnalyzeSchedule(sched, g, horizon); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: schedule report differs from sequential", algo)
		}
	}
}
