// Benchmark harness: one benchmark per experiment (E1–E18, the reproduction
// of every claim in the paper — see DESIGN.md §5 and EXPERIMENTS.md), plus
// micro-benchmarks of the performance-critical primitives and the
// sequential-vs-parallel analysis engine comparison. Run with
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks use the Quick configuration so a full sweep
// completes in seconds; `go run ./cmd/bench` runs the full-size workloads.
package holiday_test

import (
	"testing"

	holiday "repro"
	"repro/internal/chairman"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/prefixcode"
	"repro/internal/service"
	"repro/internal/stats"
)

// benchCfg sizes the experiment workloads for benchmarking.
var benchCfg = experiments.Config{Quick: true, Seed: 1}

// benchExperiment runs one experiment per iteration and keeps the table
// alive so the work is not optimized away.
func benchExperiment(b *testing.B, run func(experiments.Config) *stats.Table) {
	b.Helper()
	var sink *stats.Table
	for i := 0; i < b.N; i++ {
		sink = run(benchCfg)
	}
	if sink == nil || len(sink.Rows) == 0 {
		b.Fatal("experiment produced no table")
	}
}

func BenchmarkE1PhasedGreedy(b *testing.B) { benchExperiment(b, experiments.E1PhasedGreedy) }
func BenchmarkE2ColorBound(b *testing.B)   { benchExperiment(b, experiments.E2ColorBound) }
func BenchmarkE3DegreeBound(b *testing.B)  { benchExperiment(b, experiments.E3DegreeBound) }
func BenchmarkE4SchedulerComparison(b *testing.B) {
	benchExperiment(b, experiments.E4SchedulerComparison)
}
func BenchmarkE5CauchySums(b *testing.B)   { benchExperiment(b, experiments.E5CauchySums) }
func BenchmarkE6Rounds(b *testing.B)       { benchExperiment(b, experiments.E6Rounds) }
func BenchmarkE7FirstGrab(b *testing.B)    { benchExperiment(b, experiments.E7FirstGrab) }
func BenchmarkE8Dynamic(b *testing.B)      { benchExperiment(b, experiments.E8Dynamic) }
func BenchmarkE9Satisfaction(b *testing.B) { benchExperiment(b, experiments.E9Satisfaction) }
func BenchmarkE10MIS(b *testing.B)         { benchExperiment(b, experiments.E10MIS) }
func BenchmarkE11Codes(b *testing.B)       { benchExperiment(b, experiments.E11Codes) }
func BenchmarkE12Separation(b *testing.B)  { benchExperiment(b, experiments.E12Separation) }
func BenchmarkE13Bipartite(b *testing.B)   { benchExperiment(b, experiments.E13Bipartite) }
func BenchmarkE14Radio(b *testing.B)       { benchExperiment(b, experiments.E14Radio) }

// --- micro-benchmarks ---

func BenchmarkOmegaEncode(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink += prefixcode.Omega{}.Encode(uint64(i%65536 + 1)).Len()
	}
	_ = sink
}

func BenchmarkOmegaDecodeHoliday(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, err := prefixcode.Omega{}.Decode(prefixcode.NewIntReader(uint64(i + 1)))
		if err != nil {
			// Rare holidays match a color beyond uint64 (a legitimate
			// range error); they carry no schedulable color.
			continue
		}
		sink += v
	}
	_ = sink
}

func BenchmarkGreedyColoring(b *testing.B) {
	g := graph.GNP(2048, 0.005, 3)
	order := coloring.IdentityOrder(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if coloring.Greedy(g, order) == nil {
			b.Fatal("nil coloring")
		}
	}
}

func BenchmarkDistributedColoring(b *testing.B) {
	g := graph.GNP(512, 0.02, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coloring.DistributedDelta1(g, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhasedGreedyStep(b *testing.B) {
	g := graph.GNP(1024, 0.01, 5)
	pg, err := core.NewPhasedGreedy(g, coloring.Greedy(g, coloring.IdentityOrder(g.N())))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg.Next()
	}
}

func BenchmarkDegreeBoundConstruction(b *testing.B) {
	g := graph.GNP(2048, 0.005, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewDegreeBoundSequential(g)
	}
}

func BenchmarkDegreeBoundStep(b *testing.B) {
	g := graph.GNP(1024, 0.01, 7)
	db := core.NewDegreeBoundSequential(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Next()
	}
}

func BenchmarkHopcroftKarp(b *testing.B) {
	g := graph.GNP(2048, 0.003, 8)
	edges := g.Edges()
	adj := make([][]int, g.N())
	for i, e := range edges {
		adj[e.U] = append(adj[e.U], i)
		adj[e.V] = append(adj[e.V], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.HopcroftKarp(g.N(), len(edges), adj)
	}
}

func BenchmarkMaxSatisfactionLinear(b *testing.B) {
	g := graph.GNP(2048, 0.003, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.MaxSatisfaction(g)
	}
}

func BenchmarkMISExact(b *testing.B) {
	g := graph.GNP(26, 0.3, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mis.Exact(g)
	}
}

func BenchmarkFacadeAnalyze(b *testing.B) {
	g := graph.GNP(256, 0.03, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := holiday.New(g, holiday.DegreeBound)
		if err != nil {
			b.Fatal(err)
		}
		rep := holiday.Analyze(s, g, 256)
		if rep.IndependenceViolations != 0 {
			b.Fatal("independence violated")
		}
	}
}

func BenchmarkE15Chairman(b *testing.B)        { benchExperiment(b, experiments.E15Chairman) }
func BenchmarkE16ColoringQuality(b *testing.B) { benchExperiment(b, experiments.E16ColoringQuality) }

func BenchmarkE17ColeVishkin(b *testing.B) { benchExperiment(b, experiments.E17ColeVishkin) }

func BenchmarkLubyMIS(b *testing.B) {
	g := graph.GNP(512, 0.02, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := mis.LubyMIS(g, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColeVishkin(b *testing.B) {
	g := graph.Cycle(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coloring.ColeVishkinCycle(g, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// The closed-form periodic analyzer vs full simulation: the speedup that
// perfectly periodic schedules buy.
func BenchmarkAnalyzeSimulated(b *testing.B) {
	g := graph.GNP(512, 0.02, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := core.NewDegreeBoundSequential(g)
		core.Analyze(db, g, 4096)
	}
}

func BenchmarkAnalyzePeriodicClosedForm(b *testing.B) {
	g := graph.GNP(512, 0.02, 12)
	db := core.NewDegreeBoundSequential(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.AnalyzePeriodic(db, g, 4096)
	}
}

// --- analysis-engine benchmarks ---
//
// The E-scale workload below matches the full-size experiment instances
// (n≈2048, horizon≈8192). BenchmarkAnalyzeParallelEScale shards the horizon
// across GOMAXPROCS workers and checks independence via word-packed
// bitsets; with GOMAXPROCS ≥ 4 it runs ≥ 2× faster than
// BenchmarkAnalyzeSequentialEScale while producing an identical Report
// (asserted by TestAnalyzeParallelMatchesAnalyze and the property tests in
// internal/engine).

const (
	eScaleNodes   = 2048
	eScaleHorizon = 8192
)

func eScaleGraph() *graph.Graph { return graph.GNP(eScaleNodes, 8.0/eScaleNodes, 12) }

func BenchmarkAnalyzeSequentialEScale(b *testing.B) {
	g := eScaleGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := holiday.Analyze(core.NewDegreeBoundSequential(g), g, eScaleHorizon)
		if rep.IndependenceViolations != 0 {
			b.Fatal("independence violated")
		}
	}
}

func BenchmarkAnalyzeParallelEScale(b *testing.B) {
	g := eScaleGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := holiday.AnalyzeParallel(core.NewDegreeBoundSequential(g), g, eScaleHorizon)
		if rep.IndependenceViolations != 0 {
			b.Fatal("independence violated")
		}
	}
}

func BenchmarkAnalyzeParallelColorBoundEScale(b *testing.B) {
	g := eScaleGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := holiday.New(g, holiday.ColorBound)
		if err != nil {
			b.Fatal(err)
		}
		if rep := holiday.AnalyzeParallel(s, g, eScaleHorizon); rep.IndependenceViolations != 0 {
			b.Fatal("independence violated")
		}
	}
}

func BenchmarkRunBatchEScale(b *testing.B) {
	jobs := make([]holiday.BatchJob, 8)
	for i := range jobs {
		jobs[i] = holiday.BatchJob{
			Graph:   graph.GNP(eScaleNodes/4, 32.0/eScaleNodes, uint64(20+i)),
			Algo:    holiday.PhasedGreedy,
			Horizon: eScaleHorizon / 4,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := holiday.RunBatch(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- schedule / serving-path benchmarks ---
//
// BenchmarkWindow streams a full E-scale horizon through the random-access
// Schedule (the path the engine shards); BenchmarkWindowRandomAccess pays
// for 52-holiday pages at arbitrary offsets, which closed-form schedules
// answer without simulating the prefix. BenchmarkServiceWindowThroughput
// is the serving-path baseline: concurrent window queries against one
// community's cached frozen schedule, reported in queries/sec.

func BenchmarkWindow(b *testing.B) {
	g := eScaleGraph()
	sched, err := holiday.NewSchedule(g, holiday.DegreeBound)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var events int64
		sched.Window(1, eScaleHorizon, func(t int64, happy []int) { events += int64(len(happy)) })
		if events == 0 {
			b.Fatal("empty window")
		}
	}
}

func BenchmarkWindowRandomAccess(b *testing.B) {
	g := eScaleGraph()
	sched, err := holiday.NewSchedule(g, holiday.DegreeBound)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := int64(i%1024)*1_000_000 + 1 // far-future pages cost the same as page one
		var events int64
		sched.Window(from, from+51, func(t int64, happy []int) { events += int64(len(happy)) })
		if events == 0 {
			b.Fatal("empty window")
		}
	}
}

func BenchmarkServiceWindowThroughput(b *testing.B) {
	g := graph.GNP(1024, 8.0/1024, 13)
	reg := service.NewRegistry()
	c, err := reg.CreateFromGraph("bench", g, "")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Window(1, 52); err != nil { // freeze the schedule once
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			from := int64(i%1000)*52 + 1
			rows, err := c.Window(from, from+51)
			if err != nil || len(rows) != 52 {
				b.Errorf("window failed: %v (%d rows)", err, len(rows))
				return
			}
			i++
		}
	})
	b.StopTimer()
	if misses := c.Stats().CacheMisses; misses != 1 {
		b.Fatalf("cached serving froze %d schedules, want 1", misses)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

func BenchmarkChairmanStep(b *testing.B) {
	s := chairman.Uniform(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

func BenchmarkE18DynamicDegreeBound(b *testing.B) {
	benchExperiment(b, experiments.E18DynamicDegreeBound)
}
