// Facade-level tests of the concurrent analysis engine: the public
// AnalyzeParallel and RunBatch must reproduce sequential Analyze exactly
// for every algorithm the facade exposes.
package holiday_test

import (
	"reflect"
	"testing"

	holiday "repro"
	"repro/internal/graph"
)

// TestAnalyzeParallelMatchesAnalyze asserts byte-identical Reports between
// the sequential and parallel analysis paths for every facade algorithm.
func TestAnalyzeParallelMatchesAnalyze(t *testing.T) {
	g := graph.GNP(96, 0.06, 4)
	const horizon = 512
	for _, algo := range holiday.Algorithms() {
		seq, err := holiday.New(g, algo, holiday.WithSeed(3))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		par, err := holiday.New(g, algo, holiday.WithSeed(3))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		want := holiday.Analyze(seq, g, horizon)
		got := holiday.AnalyzeParallel(par, g, horizon)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: parallel report differs from sequential", algo)
		}
	}
}

func TestRunBatchMatchesAnalyze(t *testing.T) {
	var jobs []holiday.BatchJob
	graphs := []*graph.Graph{
		graph.GNP(64, 0.08, 6),
		graph.Cycle(50),
		graph.Star(20),
	}
	for _, g := range graphs {
		for _, algo := range []holiday.Algorithm{holiday.DegreeBound, holiday.PhasedGreedy, holiday.FirstGrab} {
			jobs = append(jobs, holiday.BatchJob{
				Graph: g, Algo: algo, Opts: []holiday.Option{holiday.WithSeed(9)}, Horizon: 300,
			})
		}
	}
	got, err := holiday.RunBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		s, err := holiday.New(j.Graph, j.Algo, j.Opts...)
		if err != nil {
			t.Fatal(err)
		}
		want := holiday.Analyze(s, j.Graph, j.Horizon)
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("job %d (%s): batch report differs from sequential", i, j.Algo)
		}
	}
}

func TestRunBatchBadAlgorithm(t *testing.T) {
	g := graph.Cycle(8)
	got, err := holiday.RunBatch([]holiday.BatchJob{
		{Graph: g, Algo: holiday.Algorithm("no-such"), Horizon: 8},
		{Graph: g, Algo: holiday.DegreeBound, Horizon: 8},
	})
	if err == nil {
		t.Fatal("want error for unknown algorithm")
	}
	if got[0] != nil || got[1] == nil {
		t.Fatalf("want [nil, report], got [%v, %v]", got[0], got[1])
	}
}
