// Family reunion: the paper's introduction, executable. In a two-group
// society where only intergroup marriage occurs (a bipartite conflict
// graph), alternating groups host and every family gathers every other
// year regardless of how many children it has. General societies are not
// bipartite; then the paper's schedulers price each family by its local
// degree while the naive round-robin charges everyone the global worst.
package main

import (
	"fmt"
	"log"

	holiday "repro"
	"repro/internal/graph"
)

func main() {
	bipartiteSociety()
	fmt.Println()
	generalSociety()
}

func bipartiteSociety() {
	fmt.Println("== Two-group society (intergroup marriage only) ==")
	// Group A: 0..3, group B: 4..7, many marriages across.
	g := graph.RandomBipartite(4, 4, 0.8, 42)
	col, err := holiday.BipartiteColoring(g)
	if err != nil {
		log.Fatal(err)
	}
	s, err := holiday.New(g, holiday.RoundRobin, holiday.WithColoring(col))
	if err != nil {
		log.Fatal(err)
	}
	for year := 1; year <= 6; year++ {
		fmt.Printf("  year %d: families %v host everyone\n", year, s.Next())
	}
	rep := holiday.Analyze(s, g, 100)
	worst := int64(0)
	for _, nr := range rep.Nodes {
		if nr.MaxUnhappyRun > worst {
			worst = nr.MaxUnhappyRun
		}
	}
	fmt.Printf("  worst wait ever: %d year(s) — independent of family size\n", worst)
}

func generalSociety() {
	fmt.Println("== General society (odd cycles exist) ==")
	// One tightly intermarried clan (a 12-clique) surrounded by 48
	// single-child families, each married into the clan.
	b := graph.NewBuilder(60)
	for u := 0; u < 12; u++ {
		for v := u + 1; v < 12; v++ {
			b.AddEdge(u, v)
		}
	}
	for leaf := 12; leaf < 60; leaf++ {
		b.AddEdge(leaf, leaf%12)
	}
	g := b.Graph()
	fmt.Printf("  %d families, largest has %d in-law families\n", g.N(), g.MaxDegree())

	for _, algo := range []holiday.Algorithm{holiday.RoundRobin, holiday.PhasedGreedy, holiday.DegreeBound} {
		s, err := holiday.New(g, algo)
		if err != nil {
			log.Fatal(err)
		}
		rep := holiday.Analyze(s, g, 512)
		// Report the worst wait of the SMALL families (degree ≤ 2): the
		// paper's locality goal is that they never pay for the big ones.
		small, big := int64(0), int64(0)
		for _, nr := range rep.Nodes {
			if nr.Degree <= 2 && nr.MaxUnhappyRun > small {
				small = nr.MaxUnhappyRun
			}
			if nr.MaxUnhappyRun > big {
				big = nr.MaxUnhappyRun
			}
		}
		fmt.Printf("  %-22s small families wait ≤ %2d, worst family waits ≤ %3d\n",
			s.Name()+":", small, big)
	}
	fmt.Println("  (round-robin makes small families pay the global price;")
	fmt.Println("   the paper's schedulers charge everyone their local degree)")
}
