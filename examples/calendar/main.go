// Example calendar: the schedule as a random-access value.
//
// The paper's periodic schedulers fix every family's happy holidays in
// closed form, so a calendar for any future year — or one family's next
// gathering — costs nothing to look up. This example builds a small
// community, lifts the degree-bound scheduler to a holiday.Schedule, and
// answers three kinds of query without ever simulating the sequence:
// a window a million holidays in, each family's next happy holiday, and a
// spot check of one far-future holiday.
package main

import (
	"fmt"

	holiday "repro"
)

func main() {
	c := holiday.NewCommunity()
	c.MustMarry("Cohen", "Levi")
	c.MustMarry("Cohen", "Mizrahi")
	c.MustMarry("Levi", "Peretz")
	c.MustMarry("Mizrahi", "Biton")
	c.MustMarry("Peretz", "Biton")
	g := c.Graph()

	sched, err := holiday.NewSchedule(g, holiday.DegreeBound)
	if err != nil {
		panic(err)
	}

	// A week of holidays starting one million holidays from now: random
	// access means this window costs the same as holidays 1..7.
	const start = 1_000_001
	fmt.Println("holiday    happy families")
	sched.Window(start, start+6, func(t int64, happy []int) {
		fmt.Printf("%9d  %v\n", t, c.Names(happy))
	})

	// Every family can compute its own next gathering in closed form.
	fmt.Println("\nnext happy holiday at or after", start)
	for v := 0; v < g.N(); v++ {
		fmt.Printf("  %-8s → %d\n", c.FamilyName(v), sched.NextHappy(v, start))
	}

	// Spot-check one holiday directly.
	t := int64(start + 3)
	fmt.Printf("\nHappySet(%d) = %v\n", t, c.Names(sched.HappySet(t)))
}
