// Dynamic family: the §6 dynamic setting. Marriages and divorces arrive
// while the periodic color-bound schedule is running; conflicting in-laws
// recolor greedily and their hosting period adapts to their current number
// of in-law families.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/prefixcode"
)

func main() {
	// Start from a small static community.
	g := graph.GNP(16, 0.15, 11)
	dc, err := core.NewDynamicColorBound(g, prefixcode.Omega{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community of %d families, %d marriages\n\n", dc.N(), g.M())

	rng := rand.New(rand.NewPCG(5, 9))
	for step := 0; step < 10; step++ {
		// A few holidays pass…
		for k := 0; k < 3; k++ {
			happy := dc.Next()
			fmt.Printf("  year %3d: families %v gather everyone\n", dc.Holiday(), happy)
		}
		// …then the community changes.
		u, v := rng.IntN(dc.N()), rng.IntN(dc.N())
		if u == v {
			continue
		}
		if step%3 == 2 {
			if dc.RemoveEdge(u, v) {
				fmt.Printf("  ** divorce between families %d and %d\n", u, v)
			}
		} else {
			recolored, err := dc.AddEdge(u, v)
			if err != nil {
				log.Fatal(err)
			}
			if recolored {
				fmt.Printf("  ** marriage joins families %d and %d — they clashed, one rescheduled (period now %d and %d)\n",
					u, v, dc.CurrentPeriod(u), dc.CurrentPeriod(v))
			} else {
				fmt.Printf("  ** marriage joins families %d and %d — no clash, schedules unchanged\n", u, v)
			}
		}
		if err := dc.VerifyProper(); err != nil {
			log.Fatalf("invariant broken: %v", err)
		}
	}
	fmt.Printf("\nafter all the churn: %d recolorings, schedule still conflict-free (%d marriages)\n",
		dc.Recolorings, dc.Graph().M())
	for v := 0; v < dc.N(); v++ {
		fmt.Printf("  family %2d: %d in-laws -> hosts every %d years\n",
			v, dc.Degree(v), dc.CurrentPeriod(v))
	}
}
