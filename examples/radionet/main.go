// Radio network: the paper's motivating application (§1). Radios scattered
// in the unit square interfere within a radius; a gathering schedule is a
// TDMA slot assignment where "hosting" means transmitting. Periodic
// schedules let radios sleep between their slots and give each radio a rate
// governed by its local interference degree.
package main

import (
	"fmt"
	"log"

	holiday "repro"
	"repro/internal/core"
	"repro/internal/radio"
)

func main() {
	nw := radio.NewNetwork(128, 0.12, 3)
	fmt.Printf("radio network: %d radios, interference radius 0.12, %d conflicting pairs, max degree %d\n\n",
		nw.G.N(), nw.G.M(), nw.G.MaxDegree())

	slots := int64(2048)

	// The §5 degree-bound schedule: perfectly periodic TDMA.
	db := core.NewDegreeBoundSequential(nw.G)
	rep := nw.Run(db, slots)
	show("degree-bound (periodic)", rep)

	// Round-robin over a greedy coloring: also periodic, but every radio
	// transmits at the same global rate.
	rr, err := holiday.New(nw.G, holiday.RoundRobin)
	if err != nil {
		log.Fatal(err)
	}
	show("round-robin (periodic)", nw.Run(rr, slots))

	// Phased greedy: locally fair but non-periodic, so every radio must
	// stay awake listening every slot.
	pg, err := holiday.New(nw.G, holiday.PhasedGreedy)
	if err != nil {
		log.Fatal(err)
	}
	show("phased-greedy (non-periodic)", nw.Run(pg, slots))

	fmt.Println("reading the numbers:")
	fmt.Println("  collisions   must be 0: happy sets are independent")
	fmt.Println("  fairness     Jain index of throughput × (deg+1); 1.0 = everyone gets their fair share")
	fmt.Println("  awake/tx     energy: awake slots per successful transmission (1.0 = perfect sleep schedule)")
}

func show(name string, rep *radio.Report) {
	minTp, maxTp := 1.0, 0.0
	for _, tp := range rep.Throughput {
		if tp < minTp {
			minTp = tp
		}
		if tp > maxTp {
			maxTp = tp
		}
	}
	fmt.Printf("%-30s collisions=%d fairness=%.3f awake/tx=%.2f throughput=[%.4f, %.4f]\n",
		name, rep.Collisions, rep.Fairness, rep.MeanAwakePerTx, minTp, maxTp)
}
