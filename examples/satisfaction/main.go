// Satisfaction: Appendix A.3, executable. Being happy (hosting ALL your
// children) is rare and expensive; being satisfied (hosting at least one)
// is cheap: a maximum-satisfaction assignment is computable in linear time,
// and a simple alternation keeps every parent satisfied every other year.
package main

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/matching"
)

func main() {
	// A community with a tree part (someone must lose) and a cycle part
	// (everyone can win).
	g := graph.MustFromEdges(9, []graph.Edge{
		// A star: families 0..4; the center 0 has four married children.
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4},
		// A cycle of four families 5..8.
		{U: 5, V: 6}, {U: 6, V: 7}, {U: 7, V: 8}, {U: 8, V: 5},
	})
	fmt.Printf("community: %d families, %d couples\n\n", g.N(), g.M())

	res := matching.MaxSatisfaction(g)
	fmt.Printf("maximum simultaneous satisfaction: %d of %d families\n", res.Count, g.N())
	fmt.Printf("  (optimal: Hopcroft–Karp gives %d, closed form n − #acyclic components gives %d)\n\n",
		matching.MaxSatisfactionHK(g), matching.MaxSatisfactionFormula(g))

	for i, e := range g.Edges() {
		host := res.CoupleHost[i]
		if host >= 0 {
			fmt.Printf("  couple of families %d & %d celebrates at family %d\n", e.U, e.V, host)
		} else {
			fmt.Printf("  couple of families %d & %d may celebrate anywhere\n", e.U, e.V)
		}
	}
	var unsat []int
	for p, ok := range res.Satisfied {
		if !ok {
			unsat = append(unsat, p)
		}
	}
	fmt.Printf("\nunsatisfied this year: families %v (the star is a tree — one family must lose)\n\n", unsat)

	// But nobody needs to be lonely two years running: alternate!
	runs := matching.MaxUnsatisfiedRun(g, 20)
	worst := int64(0)
	for _, r := range runs {
		if r > worst {
			worst = r
		}
	}
	fmt.Printf("alternating schedule over 20 years: longest unsatisfied streak of any family = %d year\n", worst)
	fmt.Println("(each couple simply alternates between its two parent households)")
}
