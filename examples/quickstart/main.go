// Quickstart: build a small community of families by name, schedule their
// holiday gatherings with the §5 degree-bound algorithm, and print who gets
// all their children home each year.
package main

import (
	"fmt"
	"log"

	holiday "repro"
)

func main() {
	c := holiday.NewCommunity()
	// The Cohens have three married children; the others one or two.
	c.MustMarry("Cohen", "Levi")
	c.MustMarry("Cohen", "Mizrahi")
	c.MustMarry("Cohen", "Biton")
	c.MustMarry("Levi", "Peretz")
	c.MustMarry("Mizrahi", "Peretz")

	g := c.Graph()
	s, err := holiday.New(g, holiday.DegreeBound)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The holiday plan (degree-bound scheduler, period ≤ 2·in-laws):")
	for year := 1; year <= 12; year++ {
		fmt.Printf("  year %2d: %v celebrate with ALL their children\n",
			year, c.Names(s.Next()))
	}

	// Every family's wait is bounded by its own number of in-law families,
	// not by the worst family in town (Theorem 5.3).
	p := s.(holiday.Periodic)
	fmt.Println("\nguaranteed hosting periods:")
	for v := 0; v < g.N(); v++ {
		fmt.Printf("  %-8s %d in-law families -> hosts every %d years\n",
			c.FamilyName(v), g.Degree(v), p.Period(v))
	}
}
