// Command holiday runs a gathering scheduler over a conflict graph and
// prints the schedule together with per-family wait statistics.
//
// Usage:
//
//	holiday -gen gnp:n=50,p=0.1 -algo degree-bound -years 40
//	holiday -graph family.edges -algo phased-greedy -stats
//	holiday -gen star:n=9 -algo color-bound -code omega -years 32
//	holiday -gen cycle:n=12 -algo degree-bound -from 1000000 -years 8
//
// The schedule is a random-access value (holiday.NewSchedule): the plan can
// start at any holiday (-from) without simulating the prefix for periodic
// algorithms, and the statistics pass reuses the same schedule instead of
// re-running the scheduler.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	holiday "repro"
	"repro/internal/graph"
	"repro/internal/stats"
)

// algoNames renders the valid -algo values from the facade's registry, so
// the help text can never drift from the implemented set.
func algoNames() string {
	names := make([]string, 0, len(holiday.Algorithms()))
	for _, a := range holiday.Algorithms() {
		names = append(names, string(a))
	}
	return strings.Join(names, " | ")
}

func main() {
	var (
		genSpec   = flag.String("gen", "", "generate a graph from a spec, e.g. gnp:n=50,p=0.1 (see internal/graph.ParseSpec)")
		graphFile = flag.String("graph", "", "read an edge-list graph file (header 'n m', then 'u v' lines)")
		algoName  = flag.String("algo", "degree-bound", "algorithm: "+algoNames())
		years     = flag.Int64("years", 24, "holidays to analyze")
		from      = flag.Int64("from", 1, "first holiday of the printed plan (random access; periodic algorithms pay nothing for large values)")
		seed      = flag.Uint64("seed", 1, "random seed")
		code      = flag.String("code", "omega", "prefix code for color-bound: unary | gamma | delta | omega")
		showStats = flag.Bool("stats", true, "print per-degree wait statistics")
		showPlan  = flag.Bool("plan", true, "print the holiday-by-holiday schedule (first 40 holidays from -from)")
	)
	flag.Parse()

	g, err := loadGraph(*genSpec, *graphFile, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("conflict graph: %v\n", g)

	// One random-access schedule serves both the plan and the statistics:
	// no second scheduler construction, and a typoed -code or -algo fails
	// loudly here instead of being silently defaulted.
	sched, err := holiday.NewSchedule(g, holiday.Algorithm(*algoName),
		holiday.WithSeed(*seed), holiday.WithCode(*code))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("algorithm: %s\n\n", sched.Name())

	if *showPlan {
		printPlan(sched, *from, *years)
	}
	if *showStats {
		printStats(sched, g, *years)
	}
}

func loadGraph(genSpec, graphFile string, seed uint64) (*graph.Graph, error) {
	switch {
	case genSpec != "" && graphFile != "":
		return nil, fmt.Errorf("use either -gen or -graph, not both")
	case genSpec != "":
		return graph.ParseSpec(genSpec, seed)
	case graphFile != "":
		f, err := os.Open(graphFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	default:
		return graph.ParseSpec("gnp:n=24,p=0.15", seed)
	}
}

func printPlan(sched holiday.Schedule, from, years int64) {
	if from < 1 {
		from = 1
	}
	to := from + years - 1
	if limit := from + 39; to > limit {
		to = limit
	}
	fmt.Println("holiday  happy families")
	sched.Window(from, to, func(t int64, happy []int) {
		// The callback slice is a reused buffer; copy before sorting.
		row := append([]int(nil), happy...)
		sort.Ints(row)
		fmt.Printf("%7d  %v\n", t, row)
	})
	if printed := to - from + 1; printed < years {
		fmt.Printf("… (%d more holidays analyzed for statistics)\n", years-printed)
	}
	fmt.Println()
}

func printStats(sched holiday.Schedule, g *graph.Graph, years int64) {
	// The engine shards random-access schedules across cores and uses
	// bitset independence checks; output is identical to sequential
	// analysis from holiday 1.
	rep := holiday.AnalyzeSchedule(sched, g, years)
	tb := stats.NewTable("per-degree wait statistics",
		"degree", "families", "max unhappy run", "max gap", "mean gap")
	type agg struct {
		count   int
		maxRun  int64
		maxGap  int64
		gapSum  float64
		gapSeen int
	}
	byDeg := map[int]*agg{}
	for _, nr := range rep.Nodes {
		a := byDeg[nr.Degree]
		if a == nil {
			a = &agg{}
			byDeg[nr.Degree] = a
		}
		a.count++
		if nr.MaxUnhappyRun > a.maxRun {
			a.maxRun = nr.MaxUnhappyRun
		}
		if nr.MaxGap > a.maxGap {
			a.maxGap = nr.MaxGap
		}
		if nr.MeanGap > 0 {
			a.gapSum += nr.MeanGap
			a.gapSeen++
		}
	}
	degrees := make([]int, 0, len(byDeg))
	for d := range byDeg {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	for _, d := range degrees {
		a := byDeg[d]
		mean := 0.0
		if a.gapSeen > 0 {
			mean = a.gapSum / float64(a.gapSeen)
		}
		tb.AddRow(d, a.count, a.maxRun, a.maxGap, mean)
	}
	if err := tb.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if rep.IndependenceViolations > 0 {
		fatal(fmt.Errorf("INDEPENDENCE VIOLATED on %d holidays", rep.IndependenceViolations))
	}
	fmt.Printf("\nindependence verified on all %d holidays; %d holidays had no happy family\n",
		years, rep.EmptyHolidays)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "holiday:", err)
	os.Exit(1)
}
