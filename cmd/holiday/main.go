// Command holiday runs a gathering scheduler over a conflict graph and
// prints the schedule together with per-family wait statistics.
//
// Usage:
//
//	holiday -gen gnp:n=50,p=0.1 -algo degree-bound -years 40
//	holiday -graph family.edges -algo phased-greedy -stats
//	holiday -gen star:n=9 -algo color-bound -code omega -years 32
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	holiday "repro"
	"repro/internal/graph"
	"repro/internal/stats"
)

func main() {
	var (
		genSpec   = flag.String("gen", "", "generate a graph from a spec, e.g. gnp:n=50,p=0.1 (see internal/graph.ParseSpec)")
		graphFile = flag.String("graph", "", "read an edge-list graph file (header 'n m', then 'u v' lines)")
		algoName  = flag.String("algo", "degree-bound", "algorithm: phased-greedy | color-bound | degree-bound | degree-bound-distributed | round-robin | first-grab")
		years     = flag.Int64("years", 24, "holidays to simulate")
		seed      = flag.Uint64("seed", 1, "random seed")
		code      = flag.String("code", "omega", "prefix code for color-bound: unary | gamma | delta | omega")
		showStats = flag.Bool("stats", true, "print per-degree wait statistics")
		showPlan  = flag.Bool("plan", true, "print the holiday-by-holiday schedule (first 40 holidays)")
	)
	flag.Parse()

	g, err := loadGraph(*genSpec, *graphFile, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("conflict graph: %v\n", g)

	s, err := holiday.New(g, holiday.Algorithm(*algoName),
		holiday.WithSeed(*seed), holiday.WithCode(*code))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("algorithm: %s\n\n", s.Name())

	if *showPlan {
		printPlan(s, *years)
	}
	if *showStats {
		// Re-create the scheduler so statistics cover the full horizon from
		// holiday 1 even when the plan was printed.
		s2, err := holiday.New(g, holiday.Algorithm(*algoName),
			holiday.WithSeed(*seed), holiday.WithCode(*code))
		if err != nil {
			fatal(err)
		}
		printStats(s2, g, *years)
	}
}

func loadGraph(genSpec, graphFile string, seed uint64) (*graph.Graph, error) {
	switch {
	case genSpec != "" && graphFile != "":
		return nil, fmt.Errorf("use either -gen or -graph, not both")
	case genSpec != "":
		return graph.ParseSpec(genSpec, seed)
	case graphFile != "":
		f, err := os.Open(graphFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	default:
		return graph.ParseSpec("gnp:n=24,p=0.15", seed)
	}
}

func printPlan(s holiday.Scheduler, years int64) {
	limit := years
	if limit > 40 {
		limit = 40
	}
	fmt.Println("holiday  happy families")
	for t := int64(1); t <= limit; t++ {
		happy := s.Next()
		sort.Ints(happy)
		fmt.Printf("%7d  %v\n", t, happy)
	}
	if limit < years {
		fmt.Printf("… (%d more holidays analyzed for statistics)\n", years-limit)
	}
	fmt.Println()
}

func printStats(s holiday.Scheduler, g *graph.Graph, years int64) {
	// The engine shards periodic schedulers across cores and uses bitset
	// independence checks; output is identical to sequential analysis.
	rep := holiday.AnalyzeParallel(s, g, years)
	tb := stats.NewTable("per-degree wait statistics",
		"degree", "families", "max unhappy run", "max gap", "mean gap")
	type agg struct {
		count   int
		maxRun  int64
		maxGap  int64
		gapSum  float64
		gapSeen int
	}
	byDeg := map[int]*agg{}
	for _, nr := range rep.Nodes {
		a := byDeg[nr.Degree]
		if a == nil {
			a = &agg{}
			byDeg[nr.Degree] = a
		}
		a.count++
		if nr.MaxUnhappyRun > a.maxRun {
			a.maxRun = nr.MaxUnhappyRun
		}
		if nr.MaxGap > a.maxGap {
			a.maxGap = nr.MaxGap
		}
		if nr.MeanGap > 0 {
			a.gapSum += nr.MeanGap
			a.gapSeen++
		}
	}
	degrees := make([]int, 0, len(byDeg))
	for d := range byDeg {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	for _, d := range degrees {
		a := byDeg[d]
		mean := 0.0
		if a.gapSeen > 0 {
			mean = a.gapSum / float64(a.gapSeen)
		}
		tb.AddRow(d, a.count, a.maxRun, a.maxGap, mean)
	}
	if err := tb.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if rep.IndependenceViolations > 0 {
		fatal(fmt.Errorf("INDEPENDENCE VIOLATED on %d holidays", rep.IndependenceViolations))
	}
	fmt.Printf("\nindependence verified on all %d holidays; %d holidays had no happy family\n",
		years, rep.EmptyHolidays)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "holiday:", err)
	os.Exit(1)
}
