// Command holidayd serves the family holiday gathering scheduler over
// HTTP/JSON: a concurrent registry of communities, each scheduled by the §6
// dynamic color-bound scheduler, answering window and next-happy queries
// from cached perfectly periodic schedules.
//
// Usage:
//
//	holidayd -addr :8080
//	holidayd -addr :8080 -demo gnp:n=100,p=0.05
//	holidayd -addr :8080 -data-dir /var/lib/holidayd
//
// With -demo, a community named "demo" is created at startup from the graph
// spec (see internal/graph.ParseSpec), so the API is queryable immediately:
//
//	curl 'localhost:8080/communities/demo/window?from=1&to=52'
//	curl 'localhost:8080/communities/demo/families/3/next?from=10'
//
// With -data-dir, the registry is durable: every mutation is written to an
// append-only WAL before it is acknowledged, the registry is snapshotted
// periodically (-snapshot-every) and on graceful shutdown (SIGINT/SIGTERM),
// and on boot the previous state is restored from snapshot + WAL replay —
// restored communities answer byte-identically. See DESIGN.md §8.
//
// With -node-id and -peers, the daemon is one member of a sharded cluster
// (DESIGN.md §11): a consistent-hash router places each community on one
// node, misrouted JSON requests are forwarded (or answered 421 not_owner),
// and the node streams its WAL to followers over the node's repl address.
// -follow subscribes this node to peers so it serves reads for their
// communities from fenced replicas:
//
//	holidayd -addr :8081 -node-id a -peers nodes.json -follow all
//
// See README.md for the full endpoint list and cluster quickstart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/persist"
	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		demoSpec   = flag.String("demo", "", "create a community 'demo' from a graph spec at startup, e.g. gnp:n=100,p=0.05")
		demoKind   = flag.String("demo-kind", "", "scheduling kind for the -demo community: 'classic' (default) or 'poly' edge scheduling")
		demoDemand = flag.Int64("demo-demand", 64,
			"with -demo-kind poly, the default per-edge frequency demand (a marriage must gather at least once every this many slots)")
		seed      = flag.Uint64("seed", 1, "random seed for the -demo graph generator")
		dataDir   = flag.String("data-dir", "", "durability directory (snapshot + churn WAL); empty serves from memory only")
		snapEvery = flag.Duration("snapshot-every", 5*time.Minute,
			"periodic snapshot interval with -data-dir; 0 snapshots only on graceful shutdown")
		walSync = flag.Duration("wal-sync", persist.DefaultSyncInterval,
			"WAL group-commit fsync interval with -data-dir; 0 fsyncs every record before acking")
		binMaxBatch = flag.Int("bin-max-batch", service.DefaultMaxBinBatch,
			"max frames one /v1/bin request may carry")
		churnBatch = flag.Int("churn-batch", 1,
			"coalesce up to this many single-op churn requests per community into one amortized flush; 1 applies each op directly")
		churnFlush = flag.Duration("churn-flush-ms", service.DefaultChurnFlushInterval,
			"max time a coalesced churn op may wait before its batch is flushed")
		nodeID = flag.String("node-id", "",
			"this node's id in the cluster topology; empty runs a single standalone node")
		peersFile = flag.String("peers", "",
			"cluster topology file (nodes.json) naming every member; requires -node-id")
		replAddr = flag.String("repl", "",
			"replication listen address; defaults to this node's repl entry in the topology")
		maxQPS = flag.Int("max-qps", 0,
			"admission limit on data-plane requests per second (0 = unlimited); "+
				"requests beyond the limit queue rather than fail")
		follow = flag.String("follow", "",
			"comma-separated peer node ids to replicate from, or 'all' for every peer with a repl address")
		failoverAfter = flag.Duration("failover-after", cluster.DefaultDeadline,
			"missed-heartbeat deadline before a followed owner is probed and, if dead, failed over "+
				"to its most-caught-up replica; 0 disables automatic failover and placement gossip")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "holidayd: -addr must not be empty")
		flag.Usage()
		os.Exit(1)
	}
	if *snapEvery < 0 {
		fmt.Fprintln(os.Stderr, "holidayd: -snapshot-every must be ≥ 0")
		flag.Usage()
		os.Exit(1)
	}
	if *walSync < 0 {
		fmt.Fprintln(os.Stderr, "holidayd: -wal-sync must be ≥ 0")
		flag.Usage()
		os.Exit(1)
	}
	if *binMaxBatch < 1 {
		fmt.Fprintln(os.Stderr, "holidayd: -bin-max-batch must be ≥ 1")
		flag.Usage()
		os.Exit(1)
	}
	if *churnBatch < 1 {
		fmt.Fprintln(os.Stderr, "holidayd: -churn-batch must be ≥ 1")
		flag.Usage()
		os.Exit(1)
	}
	if *churnFlush <= 0 {
		fmt.Fprintln(os.Stderr, "holidayd: -churn-flush-ms must be > 0")
		flag.Usage()
		os.Exit(1)
	}
	if (*nodeID == "") != (*peersFile == "") {
		fmt.Fprintln(os.Stderr, "holidayd: -node-id and -peers must be set together")
		flag.Usage()
		os.Exit(1)
	}
	switch *demoKind {
	case "", service.KindClassic, service.KindPoly:
	default:
		fmt.Fprintf(os.Stderr, "holidayd: -demo-kind %q: want %q or %q\n", *demoKind, service.KindClassic, service.KindPoly)
		flag.Usage()
		os.Exit(1)
	}
	if *demoDemand < 1 {
		fmt.Fprintln(os.Stderr, "holidayd: -demo-demand must be ≥ 1")
		flag.Usage()
		os.Exit(1)
	}

	// Cluster topology, when this daemon is a member of one.
	var router *service.Router
	var selfNode service.Node
	if *peersFile != "" {
		topo, err := service.LoadTopology(*peersFile)
		if err != nil {
			fatal(err)
		}
		router, err = service.NewRouter(service.RouterOpts{Self: *nodeID, Nodes: topo.Nodes})
		if err != nil {
			fatal(err)
		}
		for _, n := range topo.Nodes {
			if n.ID == *nodeID {
				selfNode = n
			}
		}
		if *replAddr == "" {
			*replAddr = selfNode.Repl
		}
	}

	var reg *service.Registry
	var store *persist.Store
	if *dataDir != "" {
		opts := persist.Options{Sync: persist.SyncBatch, SyncInterval: *walSync}
		if *walSync == 0 {
			opts.Sync = persist.SyncAlways
		}
		var err error
		store, err = persist.Open(*dataDir, opts)
		if err != nil {
			fatal(err)
		}
		reg, err = store.Load()
		if err != nil {
			fatal(err)
		}
		log.Printf("restored %d communities from %s", len(reg.List()), *dataDir)
	} else {
		reg = service.NewRegistry()
	}

	// In cluster mode the node's journal is wrapped in a replication source:
	// every record is durable first (when -data-dir is set), then streamed
	// to subscribed followers. Attach before -demo so even boot-time writes
	// replicate.
	var src *cluster.Source
	if router != nil {
		sopts := cluster.SourceOpts{Owner: reg, Router: router}
		if store != nil {
			// A community taken over mid-handoff (or by failover) should
			// survive a crash here even before the next periodic snapshot.
			st := store
			sopts.OnTakeover = func(id string) {
				go func() {
					if err := st.SaveSnapshot(reg); err != nil {
						log.Printf("post-takeover snapshot failed: %v", err)
					}
				}()
			}
		}
		if store != nil {
			sopts.Journal = store.Journal()
			if w, ok := sopts.Journal.(interface{ Seq() uint64 }); ok {
				sopts.Start = w.Seq()
			}
		}
		var err error
		if src, err = cluster.NewSource(sopts); err != nil {
			fatal(err)
		}
		reg.SetJournal(src)
		// Restored communities this topology places elsewhere are replicas
		// here: fence them so only their owner takes writes.
		for _, id := range reg.List() {
			if !router.IsLocal(id) {
				reg.Fence(id)
			}
		}
	}

	if *demoSpec != "" {
		if router != nil && !router.IsLocal("demo") {
			log.Printf("community %q is placed on node %s; skipping -demo here", "demo", router.Place("demo"))
		} else if _, exists := reg.Get("demo"); exists {
			log.Printf("community %q already restored from %s; skipping -demo", "demo", *dataDir)
		} else {
			g, err := graph.ParseSpec(*demoSpec, *seed)
			if err != nil {
				fatal(err)
			}
			if *demoKind == service.KindPoly {
				edges := make([][2]int, 0, g.M())
				for _, e := range g.Edges() {
					edges = append(edges, [2]int{e.U, e.V})
				}
				if _, err := reg.CreateSpec(service.CreateSpec{
					ID:            "demo",
					Families:      g.N(),
					Edges:         edges,
					Kind:          service.KindPoly,
					DefaultDemand: *demoDemand,
				}); err != nil {
					fatal(err)
				}
				log.Printf("created poly community %q: %d holidays, %d marriages, default demand %d",
					"demo", g.N(), g.M(), *demoDemand)
			} else {
				if _, err := reg.CreateFromGraph("demo", g, ""); err != nil {
					fatal(err)
				}
				log.Printf("created community %q: %d families, %d marriages", "demo", g.N(), g.M())
			}
		}
	}

	// SIGTERM is how docker/k8s stop a container; trapping only SIGINT
	// used to skip graceful shutdown — and snapshot-on-shutdown — anywhere
	// but an interactive terminal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Replication: serve this node's stream and subscribe to followed peers.
	var followers map[string]*cluster.Follower
	if src != nil && *replAddr != "" {
		ln, err := net.Listen("tcp", *replAddr)
		if err != nil {
			fatal(err)
		}
		go func() {
			if err := src.Serve(ln); err != nil {
				log.Printf("replication listener: %v", err)
			}
		}()
		log.Printf("replicating on %s", *replAddr)
	}
	if *follow != "" {
		if router == nil {
			fatal(errors.New("-follow requires -node-id and -peers"))
		}
		followers = startFollowers(ctx, reg, router, *nodeID, *follow)
	}

	hopts := service.HandlerOpts{
		Owner:       reg,
		Router:      router,
		Node:        *nodeID,
		MaxBinBatch: *binMaxBatch,
	}
	if len(followers) > 0 {
		fs := followers
		hopts.Lag = func() map[string]uint64 {
			lag := make(map[string]uint64)
			for _, f := range fs {
				for id, l := range f.Lag() {
					lag[id] = l
				}
			}
			return lag
		}
	}
	if src != nil {
		hopts.Handoff = func(community string, table service.Placement) (uint64, time.Duration, error) {
			res, err := cluster.Handoff(reg, src, router, community, table, 0)
			if err != nil {
				return 0, 0, err
			}
			log.Printf("handed off %q to %s at epoch %d (cut %d, pause %v)",
				community, table.Assign[community], table.Epoch, res.CutSeq, res.Pause)
			return res.CutSeq, res.Pause, nil
		}
	}
	var coalescer *service.Coalescer
	if *churnBatch > 1 {
		coalescer = service.NewCoalescer(*churnBatch, *churnFlush)
		hopts.Churn = coalescer
		log.Printf("coalescing churn: up to %d ops per flush, %v max wait", *churnBatch, *churnFlush)
	}
	var handler http.Handler = service.NewHandler(hopts)
	// The failover plane: placement gossip plus, for followed owners, the
	// missed-heartbeat detector that elects a most-caught-up replica. Built
	// after NewHandler so its fence-reconciliation watcher sees every table
	// the detector installs; the synchronous boot round adopts the cluster's
	// current epoch before this node serves (a rejoining stale owner
	// refences its lost communities here, not after its first bad write).
	if router != nil && *failoverAfter > 0 {
		det, err := cluster.NewDetector(cluster.DetectorOpts{
			Router:    router,
			Owner:     reg,
			Followers: followers,
			Deadline:  *failoverAfter,
			Logf:      log.Printf,
		})
		if err != nil {
			fatal(err)
		}
		det.Gossip(ctx)
		go det.Run(ctx)
		log.Printf("failover detector armed: deadline %v over %d followed peers", *failoverAfter, len(followers))
	}
	if *maxQPS > 0 {
		handler = admissionLimit(handler, *maxQPS)
		log.Printf("admission limit: %d data-plane requests/s", *maxQPS)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("holidayd listening on %s", *addr)

	if store != nil && *snapEvery > 0 {
		go func() {
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := store.SaveSnapshot(reg); err != nil {
						log.Printf("periodic snapshot failed: %v", err)
					} else {
						log.Printf("snapshot saved to %s", *dataDir)
					}
				}
			}
		}()
	}

	select {
	case err := <-errc:
		// The listener died on its own (port in use, fd limit, …); there is
		// no graceful state to save beyond what the WAL already has.
		if coalescer != nil {
			coalescer.Close()
		}
		if src != nil {
			src.Close()
		}
		closeStore(store, reg, false)
		fatal(err)
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			// Timed out draining in-flight requests; keep going — the
			// snapshot below must still be written.
			log.Printf("shutdown: %v", err)
		}
		// Wait for the serve goroutine so no handler races the snapshot,
		// and surface the ListenAndServe error instead of dropping it.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		// Flush open churn batches after the server stopped accepting
		// requests and before the journal closes: every acknowledged op
		// must reach the WAL.
		if coalescer != nil {
			coalescer.Close()
		}
		if src != nil {
			src.Close()
		}
		closeStore(store, reg, true)
	}
}

// startFollowers subscribes this node to the peers named by the -follow
// flag ("all" or a comma-separated id list), each replicating exactly the
// communities the router places on that peer.
func startFollowers(ctx context.Context, reg *service.Registry, router *service.Router, self, follow string) map[string]*cluster.Follower {
	var peers []service.Node
	if follow == "all" {
		for _, n := range router.Nodes() {
			if n.ID != self && n.Repl != "" {
				peers = append(peers, n)
			}
		}
	} else {
		for _, id := range strings.Split(follow, ",") {
			id = strings.TrimSpace(id)
			if id == "" || id == self {
				continue
			}
			var found *service.Node
			for _, n := range router.Nodes() {
				if n.ID == id {
					found = &n
					break
				}
			}
			if found == nil {
				fatal(fmt.Errorf("-follow %s: not in the topology", id))
			}
			if found.Repl == "" {
				fatal(fmt.Errorf("-follow %s: node has no repl address", id))
			}
			peers = append(peers, *found)
		}
	}
	followers := make(map[string]*cluster.Follower, len(peers))
	for _, peer := range peers {
		peerID := peer.ID
		f, err := cluster.NewFollower(cluster.FollowerOpts{
			Owner: reg,
			Node:  self,
			Addr:  peer.Repl,
			Accept: func(id string) bool {
				return router.Place(id) == peerID
			},
			Logf: log.Printf,
		})
		if err != nil {
			fatal(err)
		}
		go f.Run(ctx)
		followers[peerID] = f
		log.Printf("following node %s at %s", peerID, peer.Repl)
	}
	return followers
}

// admissionLimit caps data-plane throughput at qps requests per second with
// a blocking token bucket: excess requests queue on the bucket instead of
// failing, so clients see latency — not errors — at the capacity ceiling.
// Liveness and status probes bypass the limit; they must stay responsive on
// a saturated node.
func admissionLimit(h http.Handler, qps int) http.Handler {
	// Refill from elapsed wall time rather than tick counts: tickers
	// coalesce missed ticks under load, which would silently lower the
	// cap on a busy host. The bucket holds up to 250ms of burst so a late
	// refill can catch up without exceeding the average rate.
	const interval = 20 * time.Millisecond
	cap := qps / 4
	if cap < 1 {
		cap = 1
	}
	tokens := make(chan struct{}, cap)
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		last := time.Now()
		credit := 0.0
		for range t.C {
			now := time.Now()
			credit += float64(qps) * now.Sub(last).Seconds()
			last = now
			n := int(credit)
			credit -= float64(n)
			for i := 0; i < n; i++ {
				select {
				case tokens <- struct{}{}:
				default:
				}
			}
		}
	}()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" && r.URL.Path != "/v1/status" {
			<-tokens
		}
		h.ServeHTTP(w, r)
	})
}

// closeStore snapshots (when graceful) and closes the durability store.
func closeStore(store *persist.Store, reg *service.Registry, snapshot bool) {
	if store == nil {
		return
	}
	if snapshot {
		if err := store.SaveSnapshot(reg); err != nil {
			log.Printf("shutdown snapshot failed: %v", err)
		} else {
			log.Printf("snapshot saved to %s", store.Dir())
		}
	}
	if err := store.Close(); err != nil {
		log.Printf("closing WAL: %v", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "holidayd:", err)
	os.Exit(1)
}
