// Command holidayd serves the family holiday gathering scheduler over
// HTTP/JSON: a concurrent registry of communities, each scheduled by the §6
// dynamic color-bound scheduler, answering window and next-happy queries
// from cached perfectly periodic schedules.
//
// Usage:
//
//	holidayd -addr :8080
//	holidayd -addr :8080 -demo gnp:n=100,p=0.05
//
// With -demo, a community named "demo" is created at startup from the graph
// spec (see internal/graph.ParseSpec), so the API is queryable immediately:
//
//	curl 'localhost:8080/communities/demo/window?from=1&to=52'
//	curl 'localhost:8080/communities/demo/families/3/next?from=10'
//
// See README.md for the full endpoint list.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/graph"
	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		demoSpec = flag.String("demo", "", "create a community 'demo' from a graph spec at startup, e.g. gnp:n=100,p=0.05")
		seed     = flag.Uint64("seed", 1, "random seed for the -demo graph generator")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "holidayd: -addr must not be empty")
		flag.Usage()
		os.Exit(1)
	}

	reg := service.NewRegistry()
	if *demoSpec != "" {
		g, err := graph.ParseSpec(*demoSpec, *seed)
		if err != nil {
			fatal(err)
		}
		if _, err := reg.CreateFromGraph("demo", g, ""); err != nil {
			fatal(err)
		}
		log.Printf("created community %q: %d families, %d marriages", "demo", g.N(), g.M())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("holidayd listening on %s", *addr)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "holidayd:", err)
	os.Exit(1)
}
