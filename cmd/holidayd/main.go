// Command holidayd serves the family holiday gathering scheduler over
// HTTP/JSON: a concurrent registry of communities, each scheduled by the §6
// dynamic color-bound scheduler, answering window and next-happy queries
// from cached perfectly periodic schedules.
//
// Usage:
//
//	holidayd -addr :8080
//	holidayd -addr :8080 -demo gnp:n=100,p=0.05
//	holidayd -addr :8080 -data-dir /var/lib/holidayd
//
// With -demo, a community named "demo" is created at startup from the graph
// spec (see internal/graph.ParseSpec), so the API is queryable immediately:
//
//	curl 'localhost:8080/communities/demo/window?from=1&to=52'
//	curl 'localhost:8080/communities/demo/families/3/next?from=10'
//
// With -data-dir, the registry is durable: every mutation is written to an
// append-only WAL before it is acknowledged, the registry is snapshotted
// periodically (-snapshot-every) and on graceful shutdown (SIGINT/SIGTERM),
// and on boot the previous state is restored from snapshot + WAL replay —
// restored communities answer byte-identically. See DESIGN.md §8.
//
// See README.md for the full endpoint list.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/graph"
	"repro/internal/persist"
	"repro/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		demoSpec  = flag.String("demo", "", "create a community 'demo' from a graph spec at startup, e.g. gnp:n=100,p=0.05")
		seed      = flag.Uint64("seed", 1, "random seed for the -demo graph generator")
		dataDir   = flag.String("data-dir", "", "durability directory (snapshot + churn WAL); empty serves from memory only")
		snapEvery = flag.Duration("snapshot-every", 5*time.Minute,
			"periodic snapshot interval with -data-dir; 0 snapshots only on graceful shutdown")
		walSync = flag.Duration("wal-sync", persist.DefaultSyncInterval,
			"WAL group-commit fsync interval with -data-dir; 0 fsyncs every record before acking")
		binMaxBatch = flag.Int("bin-max-batch", service.DefaultMaxBinBatch,
			"max frames one /v1/bin request may carry")
		churnBatch = flag.Int("churn-batch", 1,
			"coalesce up to this many single-op churn requests per community into one amortized flush; 1 applies each op directly")
		churnFlush = flag.Duration("churn-flush-ms", service.DefaultChurnFlushInterval,
			"max time a coalesced churn op may wait before its batch is flushed")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "holidayd: -addr must not be empty")
		flag.Usage()
		os.Exit(1)
	}
	if *snapEvery < 0 {
		fmt.Fprintln(os.Stderr, "holidayd: -snapshot-every must be ≥ 0")
		flag.Usage()
		os.Exit(1)
	}
	if *walSync < 0 {
		fmt.Fprintln(os.Stderr, "holidayd: -wal-sync must be ≥ 0")
		flag.Usage()
		os.Exit(1)
	}
	if *binMaxBatch < 1 {
		fmt.Fprintln(os.Stderr, "holidayd: -bin-max-batch must be ≥ 1")
		flag.Usage()
		os.Exit(1)
	}
	if *churnBatch < 1 {
		fmt.Fprintln(os.Stderr, "holidayd: -churn-batch must be ≥ 1")
		flag.Usage()
		os.Exit(1)
	}
	if *churnFlush <= 0 {
		fmt.Fprintln(os.Stderr, "holidayd: -churn-flush-ms must be > 0")
		flag.Usage()
		os.Exit(1)
	}

	var reg *service.Registry
	var store *persist.Store
	if *dataDir != "" {
		opts := persist.Options{Sync: persist.SyncBatch, SyncInterval: *walSync}
		if *walSync == 0 {
			opts.Sync = persist.SyncAlways
		}
		var err error
		store, err = persist.Open(*dataDir, opts)
		if err != nil {
			fatal(err)
		}
		reg, err = store.Load()
		if err != nil {
			fatal(err)
		}
		log.Printf("restored %d communities from %s", len(reg.List()), *dataDir)
	} else {
		reg = service.NewRegistry()
	}

	if *demoSpec != "" {
		if _, exists := reg.Get("demo"); exists {
			log.Printf("community %q already restored from %s; skipping -demo", "demo", *dataDir)
		} else {
			g, err := graph.ParseSpec(*demoSpec, *seed)
			if err != nil {
				fatal(err)
			}
			if _, err := reg.CreateFromGraph("demo", g, ""); err != nil {
				fatal(err)
			}
			log.Printf("created community %q: %d families, %d marriages", "demo", g.N(), g.M())
		}
	}

	hopts := service.HandlerOptions{MaxBinBatch: *binMaxBatch}
	var coalescer *service.Coalescer
	if *churnBatch > 1 {
		coalescer = service.NewCoalescer(*churnBatch, *churnFlush)
		hopts.Churn = coalescer
		log.Printf("coalescing churn: up to %d ops per flush, %v max wait", *churnBatch, *churnFlush)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandlerOpts(reg, hopts),
		ReadHeaderTimeout: 5 * time.Second,
	}
	// SIGTERM is how docker/k8s stop a container; trapping only SIGINT
	// used to skip graceful shutdown — and snapshot-on-shutdown — anywhere
	// but an interactive terminal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("holidayd listening on %s", *addr)

	if store != nil && *snapEvery > 0 {
		go func() {
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := store.SaveSnapshot(reg); err != nil {
						log.Printf("periodic snapshot failed: %v", err)
					} else {
						log.Printf("snapshot saved to %s", *dataDir)
					}
				}
			}
		}()
	}

	select {
	case err := <-errc:
		// The listener died on its own (port in use, fd limit, …); there is
		// no graceful state to save beyond what the WAL already has.
		if coalescer != nil {
			coalescer.Close()
		}
		closeStore(store, reg, false)
		fatal(err)
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			// Timed out draining in-flight requests; keep going — the
			// snapshot below must still be written.
			log.Printf("shutdown: %v", err)
		}
		// Wait for the serve goroutine so no handler races the snapshot,
		// and surface the ListenAndServe error instead of dropping it.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		// Flush open churn batches after the server stopped accepting
		// requests and before the journal closes: every acknowledged op
		// must reach the WAL.
		if coalescer != nil {
			coalescer.Close()
		}
		closeStore(store, reg, true)
	}
}

// closeStore snapshots (when graceful) and closes the durability store.
func closeStore(store *persist.Store, reg *service.Registry, snapshot bool) {
	if store == nil {
		return
	}
	if snapshot {
		if err := store.SaveSnapshot(reg); err != nil {
			log.Printf("shutdown snapshot failed: %v", err)
		} else {
			log.Printf("snapshot saved to %s", store.Dir())
		}
	}
	if err := store.Close(); err != nil {
		log.Printf("closing WAL: %v", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "holidayd:", err)
	os.Exit(1)
}
