// Command holidayctl operates a holidayd cluster from its static topology
// file (nodes.json, see DESIGN.md §11–12):
//
//	holidayctl -topology nodes.json status
//	holidayctl -topology nodes.json place demo other-community
//	holidayctl -topology nodes.json join d http://127.0.0.1:8084 127.0.0.1:9094
//	holidayctl -topology nodes.json rebalance
//	holidayctl -topology nodes.json promote demo b
//
// status polls every member's /v1/status and renders the cluster table:
// placement epoch, per-node community counts, then per-community detail.
// place resolves consistent-hash placement client-side (the same pure
// function the daemons compute, so no node needs to be up). join appends a
// member to the topology file and — when the cluster is reachable — live-
// rebalances onto it: each moved community is streamed to the new node by
// its owner (snapshot + WAL tail over the §9 framing) and flips at a new
// placement epoch, no restarts. rebalance runs the same move plan against
// the current membership. promote is the break-glass ownership override
// for when the automatic failover cannot run (a cluster running with
// -failover-after 0, or a partition the detector cannot see through);
// under normal operation a dead owner's communities fail over to their
// most-caught-up replicas with no operator involved.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

func main() {
	topoPath := flag.String("topology", "nodes.json", "cluster topology file")
	timeout := flag.Duration("timeout", 3*time.Second, "per-node HTTP timeout")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	topo, err := service.LoadTopology(*topoPath)
	if err != nil {
		fatal(err)
	}
	client := &http.Client{Timeout: *timeout}

	switch cmd, rest := args[0], args[1:]; cmd {
	case "status":
		err = status(client, topo)
	case "place":
		err = place(topo, rest)
	case "join":
		err = join(*topoPath, topo, rest)
	case "rebalance":
		err = rebalance(topo)
	case "promote":
		err = promote(client, topo, rest)
	default:
		fmt.Fprintf(os.Stderr, "holidayctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: holidayctl [-topology nodes.json] <command> [args]

commands:
  status                     poll every member's /v1/status (epoch + per-node table)
  place <community>...       resolve placement for community ids
  join <id> <addr> [repl]    add a member to the topology file and live-rebalance onto it
  rebalance                  move every community to its ring placement via live handoffs
  promote <community> <node> break-glass: force ownership without a handoff
                             (normal failover is automatic; see -failover-after)
`)
	flag.PrintDefaults()
}

// nodeStatus mirrors the service status response shape holidayctl consumes.
type nodeStatus struct {
	Node        string            `json:"node"`
	Epoch       uint64            `json:"epoch"`
	Overrides   map[string]string `json:"overrides"`
	Communities []struct {
		ID     string `json:"id"`
		Kind   string `json:"kind"`
		Role   string `json:"role"`
		Placed string `json:"placed"`
		Seq    uint64 `json:"seq"`
		Lag    uint64 `json:"lag"`
	} `json:"communities"`
}

func status(client *http.Client, topo service.Topology) error {
	type row struct {
		node service.Node
		st   nodeStatus
		err  error
	}
	rows := make([]row, 0, len(topo.Nodes))
	for _, n := range topo.Nodes {
		r := row{node: n}
		resp, err := client.Get(strings.TrimRight(n.Addr, "/") + "/v1/status")
		if err != nil {
			r.err = err
		} else {
			r.err = json.NewDecoder(resp.Body).Decode(&r.st)
			resp.Body.Close()
		}
		rows = append(rows, r)
	}

	// The cluster table: epoch and community counts per node. Epochs can
	// disagree transiently while gossip converges — showing each node's own
	// epoch is the point.
	fmt.Printf("%-8s %-24s %-6s %-6s %-6s %-8s\n", "NODE", "ADDR", "STATE", "EPOCH", "OWNS", "FOLLOWS")
	for _, r := range rows {
		if r.err != nil {
			fmt.Printf("%-8s %-24s %-6s %-6s %-6s %-8s  (%v)\n", r.node.ID, r.node.Addr, "down", "-", "-", "-", r.err)
			continue
		}
		owned, following := 0, 0
		for _, c := range r.st.Communities {
			if c.Role == "owner" {
				owned++
			} else {
				following++
			}
		}
		fmt.Printf("%-8s %-24s %-6s %-6d %-6d %-8d\n", r.node.ID, r.node.Addr, "up", r.st.Epoch, owned, following)
	}

	for _, r := range rows {
		if r.err != nil {
			continue
		}
		for _, c := range r.st.Communities {
			lag := ""
			if c.Role != "owner" {
				lag = fmt.Sprintf("  lag %d", c.Lag)
			}
			kind := c.Kind
			if kind == "" {
				// Pre-poly daemons omit the field; they only serve classic.
				kind = service.KindClassic
			}
			fmt.Printf("%-8s %-16s %-8s %-8s seq %-8d placed on %s%s\n", r.node.ID, c.ID, kind, c.Role, c.Seq, c.Placed, lag)
		}
		if len(r.st.Overrides) > 0 {
			keys := make([]string, 0, len(r.st.Overrides))
			for k := range r.st.Overrides {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("%-8s assign: %s -> %s\n", r.node.ID, k, r.st.Overrides[k])
			}
		}
	}
	return nil
}

func place(topo service.Topology, communities []string) error {
	if len(communities) == 0 {
		return fmt.Errorf("place: no community ids given")
	}
	rt, err := service.NewRouter(service.RouterOpts{Nodes: topo.Nodes})
	if err != nil {
		return err
	}
	for _, id := range communities {
		node := rt.Place(id)
		addr, _ := rt.Addr(node)
		fmt.Printf("%-24s -> %s (%s)\n", id, node, addr)
	}
	return nil
}

func join(path string, topo service.Topology, args []string) error {
	if len(args) < 2 || len(args) > 3 {
		return fmt.Errorf("join: want <id> <addr> [repl]")
	}
	n := service.Node{ID: args[0], Addr: args[1]}
	if len(args) == 3 {
		n.Repl = args[2]
	}
	before, err := service.NewRouter(service.RouterOpts{Nodes: topo.Nodes})
	if err != nil {
		return err
	}
	for _, m := range topo.Nodes {
		if m.ID == n.ID {
			return fmt.Errorf("join: node %q already in the topology", n.ID)
		}
	}
	topo.Nodes = append(topo.Nodes, n)
	after, err := service.NewRouter(service.RouterOpts{Nodes: topo.Nodes})
	if err != nil {
		return err
	}
	// The consistent-hash selling point, made visible: sample the key space
	// and report how much placement actually moves (≈1/n, not all of it).
	const sample = 4096
	moved := 0
	for i := 0; i < sample; i++ {
		key := fmt.Sprintf("community-%d", i)
		if before.Place(key) != after.Place(key) {
			moved++
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(service.Topology{Nodes: topo.Nodes}); err != nil {
		return err
	}
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	fmt.Printf("joined %s; %d nodes; ~%.1f%% of placements move\n",
		n.ID, len(topo.Nodes), 100*float64(moved)/sample)

	// Live rebalance: if the cluster (including the new node) is up, move
	// the communities now — owners stream each one to the joiner and the
	// placement epoch advances, no restarts. A down cluster degrades to the
	// file edit alone.
	if err := rebalance(topo); err != nil {
		fmt.Printf("live rebalance not run (%v)\n", err)
		fmt.Println("start the new node, then run: holidayctl rebalance")
	}
	return nil
}

// rebalance moves every community onto its consistent-hash placement under
// the topology's membership, one live handoff per move, publishing the
// resulting table cluster-wide.
func rebalance(topo service.Topology) error {
	seed := ""
	for _, n := range topo.Nodes {
		if n.Addr != "" {
			seed = n.Addr
			break
		}
	}
	if seed == "" {
		return fmt.Errorf("rebalance: no node in the topology has an address")
	}
	rb := &cluster.Rebalancer{Logf: func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	moves, table, err := rb.Rebalance(ctx, strings.TrimRight(seed, "/"), topo.Nodes)
	if err != nil {
		return err
	}
	if len(moves) == 0 {
		fmt.Printf("already balanced; epoch %d\n", table.Epoch)
		return nil
	}
	var worst time.Duration
	for _, mv := range moves {
		fmt.Printf("moved %-16s %s -> %-8s cut %-8d pause %v\n", mv.Community, mv.From, mv.To, mv.CutSeq, mv.Pause)
		if mv.Pause > worst {
			worst = mv.Pause
		}
	}
	fmt.Printf("%d communities moved; epoch %d; worst write pause %v\n", len(moves), table.Epoch, worst)
	return nil
}

// promote force-takes ownership without a handoff: the target node bumps
// the epoch with an assignment to itself and unfences its replica. Data
// logged on the old owner after its last replicated record is lost —
// that's why this is break-glass, not the failover path.
func promote(client *http.Client, topo service.Topology, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("promote: want <community> <node>")
	}
	community, node := args[0], args[1]
	var addr string
	for _, n := range topo.Nodes {
		if n.ID == node {
			addr = n.Addr
		}
	}
	if addr == "" {
		return fmt.Errorf("promote: node %q not in the topology", node)
	}
	body, _ := json.Marshal(map[string]string{"community": community})
	resp, err := client.Post(strings.TrimRight(addr, "/")+"/v1/promote", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("promote: node %s answered %d: %s", node, resp.StatusCode, out.String())
	}
	fmt.Printf("promoted: %s\n", strings.TrimSpace(out.String()))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "holidayctl:", err)
	os.Exit(1)
}
