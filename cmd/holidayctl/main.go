// Command holidayctl operates a holidayd cluster from its static topology
// file (nodes.json, see DESIGN.md §11):
//
//	holidayctl -topology nodes.json status
//	holidayctl -topology nodes.json place demo other-community
//	holidayctl -topology nodes.json join d http://127.0.0.1:8084 127.0.0.1:9094
//	holidayctl -topology nodes.json promote demo b
//
// status polls every member's /v1/status; place resolves consistent-hash
// placement client-side (the same pure function the daemons compute, so no
// node needs to be up); join appends a member to the topology file and
// reports how much placement moves; promote asks a node to take ownership
// of a community (after its placed owner died).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/service"
)

func main() {
	topoPath := flag.String("topology", "nodes.json", "cluster topology file")
	timeout := flag.Duration("timeout", 3*time.Second, "per-node HTTP timeout")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	topo, err := service.LoadTopology(*topoPath)
	if err != nil {
		fatal(err)
	}
	client := &http.Client{Timeout: *timeout}

	switch cmd, rest := args[0], args[1:]; cmd {
	case "status":
		err = status(client, topo)
	case "place":
		err = place(topo, rest)
	case "join":
		err = join(*topoPath, topo, rest)
	case "promote":
		err = promote(client, topo, rest)
	default:
		fmt.Fprintf(os.Stderr, "holidayctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: holidayctl [-topology nodes.json] <command> [args]

commands:
  status                     poll every member's /v1/status
  place <community>...       resolve placement for community ids
  join <id> <addr> [repl]    append a member to the topology file
  promote <community> <node> ask a node to take ownership of a community
`)
	flag.PrintDefaults()
}

// nodeStatus mirrors the service status response shape holidayctl consumes.
type nodeStatus struct {
	Node        string            `json:"node"`
	Overrides   map[string]string `json:"overrides"`
	Communities []struct {
		ID     string `json:"id"`
		Role   string `json:"role"`
		Placed string `json:"placed"`
		Seq    uint64 `json:"seq"`
		Lag    uint64 `json:"lag"`
	} `json:"communities"`
}

func status(client *http.Client, topo service.Topology) error {
	for _, n := range topo.Nodes {
		resp, err := client.Get(strings.TrimRight(n.Addr, "/") + "/v1/status")
		if err != nil {
			fmt.Printf("%-8s %-24s DOWN (%v)\n", n.ID, n.Addr, err)
			continue
		}
		var st nodeStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			fmt.Printf("%-8s %-24s BAD STATUS (%v)\n", n.ID, n.Addr, err)
			continue
		}
		owned, following := 0, 0
		for _, c := range st.Communities {
			if c.Role == "owner" {
				owned++
			} else {
				following++
			}
		}
		fmt.Printf("%-8s %-24s up  owns %d  follows %d\n", n.ID, n.Addr, owned, following)
		for _, c := range st.Communities {
			lag := ""
			if c.Role != "owner" {
				lag = fmt.Sprintf("  lag %d", c.Lag)
			}
			fmt.Printf("         %-16s %-8s seq %-8d placed on %s%s\n", c.ID, c.Role, c.Seq, c.Placed, lag)
		}
		if len(st.Overrides) > 0 {
			keys := make([]string, 0, len(st.Overrides))
			for k := range st.Overrides {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("         override: %s -> %s\n", k, st.Overrides[k])
			}
		}
	}
	return nil
}

func place(topo service.Topology, communities []string) error {
	if len(communities) == 0 {
		return fmt.Errorf("place: no community ids given")
	}
	rt, err := service.NewRouter(service.RouterOpts{Nodes: topo.Nodes})
	if err != nil {
		return err
	}
	for _, id := range communities {
		node := rt.Place(id)
		addr, _ := rt.Addr(node)
		fmt.Printf("%-24s -> %s (%s)\n", id, node, addr)
	}
	return nil
}

func join(path string, topo service.Topology, args []string) error {
	if len(args) < 2 || len(args) > 3 {
		return fmt.Errorf("join: want <id> <addr> [repl]")
	}
	n := service.Node{ID: args[0], Addr: args[1]}
	if len(args) == 3 {
		n.Repl = args[2]
	}
	before, err := service.NewRouter(service.RouterOpts{Nodes: topo.Nodes})
	if err != nil {
		return err
	}
	for _, m := range topo.Nodes {
		if m.ID == n.ID {
			return fmt.Errorf("join: node %q already in the topology", n.ID)
		}
	}
	topo.Nodes = append(topo.Nodes, n)
	after, err := service.NewRouter(service.RouterOpts{Nodes: topo.Nodes})
	if err != nil {
		return err
	}
	// The consistent-hash selling point, made visible: sample the key space
	// and report how much placement actually moves (≈1/n, not all of it).
	const sample = 4096
	moved := 0
	for i := 0; i < sample; i++ {
		key := fmt.Sprintf("community-%d", i)
		if before.Place(key) != after.Place(key) {
			moved++
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(service.Topology{Nodes: topo.Nodes}); err != nil {
		return err
	}
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	fmt.Printf("joined %s; %d nodes; ~%.1f%% of placements move\n",
		n.ID, len(topo.Nodes), 100*float64(moved)/sample)
	fmt.Println("restart daemons (or roll them) so every member loads the new topology")
	return nil
}

func promote(client *http.Client, topo service.Topology, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("promote: want <community> <node>")
	}
	community, node := args[0], args[1]
	var addr string
	for _, n := range topo.Nodes {
		if n.ID == node {
			addr = n.Addr
		}
	}
	if addr == "" {
		return fmt.Errorf("promote: node %q not in the topology", node)
	}
	body, _ := json.Marshal(map[string]string{"community": community})
	resp, err := client.Post(strings.TrimRight(addr, "/")+"/v1/promote", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("promote: node %s answered %d: %s", node, resp.StatusCode, out.String())
	}
	fmt.Printf("promoted: %s\n", strings.TrimSpace(out.String()))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "holidayctl:", err)
	os.Exit(1)
}
