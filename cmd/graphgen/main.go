// Command graphgen generates conflict graphs from compact specs and writes
// them as edge lists (or Graphviz DOT) for use with cmd/holiday.
//
// Usage:
//
//	graphgen -spec gnp:n=100,p=0.05 -o family.edges
//	graphgen -spec star:n=9 -dot -o star.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
)

func main() {
	var (
		spec = flag.String("spec", "gnp:n=32,p=0.1", "graph spec (see internal/graph.ParseSpec)")
		seed = flag.Uint64("seed", 1, "random seed")
		out  = flag.String("o", "", "output file (default stdout)")
		dot  = flag.Bool("dot", false, "write Graphviz DOT instead of an edge list")
	)
	flag.Parse()

	g, err := graph.ParseSpec(*spec, *seed)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *dot {
		err = graph.WriteDOT(w, g, "conflict")
	} else {
		err = graph.WriteEdgeList(w, g)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "graphgen: wrote %v\n", g)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
