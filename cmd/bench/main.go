// Command bench regenerates every experiment table of the reproduction
// (E1–E18 in EXPERIMENTS.md; layout in DESIGN.md §5), printing them to
// stdout and optionally writing per-experiment .txt and .csv files.
// Experiments run concurrently on the analysis engine's worker pool and
// each experiment's scheduler runs stream through the random-access
// core.Schedule path with bitset independence checks, so full-workload
// regeneration uses every core.
//
// Usage:
//
//	bench                 # full workloads
//	bench -quick          # CI-sized workloads
//	bench -out results/   # also write results/E1.txt, results/E1.csv, …
//	bench -run E3,E12     # only selected experiments
//	bench -workers 4      # cap the experiment-level worker pool
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "use reduced workload sizes")
		seed    = flag.Uint64("seed", 1, "random seed for all workloads")
		outDir  = flag.String("out", "", "directory for per-experiment .txt/.csv output")
		run     = flag.String("run", "", "comma-separated experiment ids to run (default: all)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent experiments")
	)
	flag.Parse()
	// A mistyped worker count fails loudly instead of silently falling back
	// to a default the caller did not ask for.
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "bench: -workers must be ≥ 1, got %d\n", *workers)
		flag.Usage()
		os.Exit(1)
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	selected := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	var chosen []experiments.Experiment
	known := map[string]bool{}
	for _, exp := range experiments.Registry() {
		known[exp.ID] = true
		if len(selected) == 0 || selected[exp.ID] {
			chosen = append(chosen, exp)
		}
	}
	for id := range selected {
		if !known[id] {
			fatal(fmt.Errorf("unknown experiment id %q (valid: E1–E18)", id))
		}
	}

	// Experiments run concurrently on the engine pool, but results stream
	// to stdout (and -out files) in registry order as soon as each
	// experiment's turn comes up, so a long or crashing run still shows
	// everything finished before it.
	start := time.Now()
	type result struct {
		table   *stats.Table
		elapsed time.Duration
	}
	results := make([]result, len(chosen))
	ready := make([]chan struct{}, len(chosen))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	go engine.ForEach(len(chosen), *workers, func(i int) {
		t0 := time.Now()
		results[i] = result{chosen[i].Run(cfg), time.Since(t0)}
		close(ready[i])
	})
	for i, exp := range chosen {
		<-ready[i]
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "# %s — %s (%.2fs)\n", exp.ID, exp.Desc, results[i].elapsed.Seconds())
		if err := results[i].table.Render(&buf); err != nil {
			fatal(err)
		}
		buf.WriteByte('\n')
		if _, err := buf.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		if *outDir != "" {
			if err := writeFiles(*outDir, exp.ID, results[i].table); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("ran %d experiments in %.2fs\n", len(chosen), time.Since(start).Seconds())
}

func writeFiles(dir, id string, tb *stats.Table) error {
	txt, err := os.Create(filepath.Join(dir, id+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := tb.Render(txt); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	return tb.WriteCSV(csv)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
