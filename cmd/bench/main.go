// Command bench regenerates every experiment table of the reproduction
// (E1–E14 in DESIGN.md/EXPERIMENTS.md), printing them to stdout and
// optionally writing per-experiment .txt and .csv files.
//
// Usage:
//
//	bench                 # full workloads
//	bench -quick          # CI-sized workloads
//	bench -out results/   # also write results/E1.txt, results/E1.csv, …
//	bench -run E3,E12     # only selected experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "use reduced workload sizes")
		seed   = flag.Uint64("seed", 1, "random seed for all workloads")
		outDir = flag.String("out", "", "directory for per-experiment .txt/.csv output")
		run    = flag.String("run", "", "comma-separated experiment ids to run (default: all)")
	)
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	selected := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	start := time.Now()
	count := 0
	for _, exp := range experiments.Registry() {
		if len(selected) > 0 && !selected[exp.ID] {
			continue
		}
		count++
		t0 := time.Now()
		tb := exp.Run(cfg)
		fmt.Printf("# %s — %s (%.2fs)\n", exp.ID, exp.Desc, time.Since(t0).Seconds())
		if err := tb.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		if *outDir != "" {
			if err := writeFiles(*outDir, exp.ID, tb); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("ran %d experiments in %.2fs\n", count, time.Since(start).Seconds())
}

func writeFiles(dir, id string, tb *stats.Table) error {
	txt, err := os.Create(filepath.Join(dir, id+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := tb.Render(txt); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	return tb.WriteCSV(csv)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
