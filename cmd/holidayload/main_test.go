package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

// TestValidateTarget: the -target URL is checked before a run starts, so a
// typoed scheme fails immediately with a clear message instead of surfacing
// as per-op connection errors minutes into a run.
func TestValidateTarget(t *testing.T) {
	valid := []string{
		"http://127.0.0.1:8080",
		"http://localhost:8091/",
		"https://holidayd.internal",
	}
	for _, s := range valid {
		if err := validateTarget(s); err != nil {
			t.Errorf("validateTarget(%q) = %v, want nil", s, err)
		}
	}
	invalid := map[string]string{
		"127.0.0.1:8080":          "not a valid URL", // bare host:port does not parse as a URL
		"localhost:8080":          "scheme",          // parses with scheme "localhost"
		"ftp://host:21":           "scheme",          // wrong protocol
		"http://":                 "no host",         // scheme only
		"http3://example.com":     "scheme",
		"http://bad host:80/path": "not a valid URL",
	}
	for s, want := range invalid {
		err := validateTarget(s)
		if err == nil {
			t.Errorf("validateTarget(%q) accepted", s)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("validateTarget(%q) = %q, want mention of %q", s, err, want)
		}
	}
}

// TestDiffWindow: the smoke-level binary≡JSON check against a live handler,
// including spec parsing errors and a mismatching community.
func TestDiffWindow(t *testing.T) {
	reg := service.NewRegistry()
	if _, err := reg.Create("demo", 9, [][2]int{{0, 1}, {0, 2}}, ""); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(service.HandlerOpts{Owner: reg}))
	defer srv.Close()

	if err := diffWindow(srv.URL, "demo,1,52"); err != nil {
		t.Fatalf("identical protocols diffed as different: %v", err)
	}
	for _, spec := range []string{"", "demo", "demo,1", "demo,x,2", ",1,2", "demo,1,2,3"} {
		if err := diffWindow(srv.URL, spec); err == nil {
			t.Errorf("diffWindow accepted malformed spec %q", spec)
		}
	}
	if err := diffWindow(srv.URL, "ghost,1,5"); err == nil {
		t.Error("diffWindow over an unknown community should fail")
	}
	if err := diffWindow(srv.URL, "demo,9,3"); err == nil {
		t.Error("diffWindow over an empty window should fail")
	}
}
