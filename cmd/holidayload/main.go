// Command holidayload is the load generator and perf tracker for the
// serving layer: it drives a named multi-community workload (mixes of
// window, next-happy, and marry/divorce churn ops over G(n,p)/ring/clique
// communities) either in-process against a fresh service.Registry or over
// HTTP against a live holidayd, records latency quantiles, throughput,
// cache hit ratio, and allocation counts into a BENCH_<rev>.json snapshot,
// and can compare the run against a prior snapshot with a regression
// verdict (the CI bench-gate).
//
// Usage:
//
//	holidayload -scenario ci -duration 2s            # in-process, write BENCH_<rev>.json
//	holidayload -scenario mixed -target http://127.0.0.1:8080
//	holidayload -scenario read -qps 5000 -workers 8
//	holidayload -scenario ci -compare BENCH_baseline.json -threshold 0.25
//	holidayload -replay BENCH_pr.json -compare BENCH_baseline.json
//	holidayload -list
//
// Exit status: 0 on success (and a passing comparison), 1 on usage or run
// errors, 2 when -compare detects a regression beyond the threshold.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"

	"repro/internal/benchkit"
	"repro/internal/service"
)

func main() {
	var (
		scenario  = flag.String("scenario", "ci", "named workload to run (see -list)")
		list      = flag.Bool("list", false, "list the known scenarios and exit")
		duration  = flag.Duration("duration", 0, "measured run length (default: the scenario's)")
		qps       = flag.Float64("qps", 0, "aggregate target rate; 0 = unthrottled")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent load workers")
		seed      = flag.Uint64("seed", 1, "seed for community generation and op streams")
		target    = flag.String("target", "", "drive a live holidayd at this base URL instead of in-process")
		persist   = flag.Bool("persist", false, "enable the durability WAL on the in-process registry (prices the write-ahead hot path; ignored with -target)")
		out       = flag.String("out", "", "snapshot output path (default BENCH_<rev>.json; \"-\" skips writing)")
		replay    = flag.String("replay", "", "load the current snapshot from a file instead of running")
		compare   = flag.String("compare", "", "prior snapshot to compare against; regression fails the exit status")
		threshold = flag.Float64("threshold", 0.25, "gated-metric regression tolerance for -compare (0.25 = 25%)")
		note      = flag.String("note", "", "free-form note recorded in the snapshot")
		rev       = flag.String("rev", "", "revision label for the snapshot (default: git short rev)")
	)
	flag.Parse()
	if *list {
		for _, sc := range benchkit.Scenarios() {
			fmt.Printf("%-8s %s (%d communities, default %s)\n", sc.Name, sc.Desc, len(sc.Communities), sc.Duration)
		}
		return
	}
	// Numeric flags fail loudly instead of silently defaulting: a CI job
	// that typos -workers 0 should not gate on a one-worker run.
	if *workers < 1 {
		usageError("-workers must be ≥ 1, got %d", *workers)
	}
	if *qps < 0 {
		usageError("-qps must be ≥ 0, got %g", *qps)
	}
	if *duration < 0 {
		usageError("-duration must be positive, got %s", *duration)
	}
	if *threshold <= 0 || *threshold >= 1 {
		usageError("-threshold must be in (0,1), got %g", *threshold)
	}
	if *replay != "" && (*target != "" || *duration != 0) {
		usageError("-replay loads a recorded snapshot; it cannot be combined with -target or -duration")
	}

	var snap *benchkit.Snapshot
	var err error
	if *replay != "" {
		snap, err = benchkit.LoadSnapshot(*replay)
		if err != nil {
			fatal(err)
		}
	} else {
		sc, err := benchkit.ScenarioByName(*scenario)
		if err != nil {
			fatal(err)
		}
		var driver benchkit.Driver
		if *target != "" {
			if *persist {
				usageError("-persist only applies to in-process runs; a live holidayd's durability is its own -data-dir")
			}
			driver = benchkit.NewHTTPDriver(*target, *workers)
		} else {
			inproc := benchkit.NewInProcDriver(service.NewRegistry())
			inproc.ForcePersist = *persist
			driver = inproc
		}
		if *rev == "" {
			*rev = gitRev()
		}
		opt := benchkit.Options{
			Duration: *duration,
			Workers:  *workers,
			QPS:      *qps,
			Seed:     *seed,
			Rev:      *rev,
			Note:     *note,
		}
		snap, err = benchkit.Run(sc, driver, opt)
		if err != nil {
			fatal(err)
		}
		benchkit.RenderSnapshot(os.Stdout, snap)
		if *out != "-" {
			path := *out
			if path == "" {
				path = "BENCH_" + sanitize(snap.Rev) + ".json"
			}
			if err := snap.WriteFile(path); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	if *compare == "" {
		return
	}
	old, err := benchkit.LoadSnapshot(*compare)
	if err != nil {
		fatal(err)
	}
	cmp := benchkit.Compare(old, snap, *threshold)
	fmt.Printf("\ncomparing against %s (rev %s, %s):\n", *compare, old.Rev, old.Timestamp)
	cmp.Render(os.Stdout, *threshold)
	if !cmp.Pass {
		os.Exit(2)
	}
}

// gitRev labels snapshots with the working tree's short revision, falling
// back to "dev" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

// sanitize keeps revision labels filename-safe.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// usageError reports a flag mistake and exits 1.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "holidayload: "+format+"\n", args...)
	flag.Usage()
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "holidayload:", err)
	os.Exit(1)
}
