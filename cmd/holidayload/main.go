// Command holidayload is the load generator and perf tracker for the
// serving layer: it drives a named multi-community workload (mixes of
// window, next-happy, and marry/divorce churn ops over G(n,p)/ring/clique
// communities) either in-process against a fresh service.Registry or over
// HTTP against a live holidayd, records latency quantiles, throughput,
// cache hit ratio, and allocation counts into a BENCH_<rev>.json snapshot,
// and can compare the run against a prior snapshot with a regression
// verdict (the CI bench-gate).
//
// Usage:
//
//	holidayload -scenario ci -duration 2s            # in-process, write BENCH_<rev>.json
//	holidayload -scenario mixed -target http://127.0.0.1:8080
//	holidayload -scenario read -target http://127.0.0.1:8080 -proto binary -batch 16
//	holidayload -scenario mixed -churn-frac 0.5 -churn-batch 64 -persist
//	holidayload -scenario mega -duration 20s
//	holidayload -scenario mega-ci -cluster nodes.json -rotate-every 2s
//	holidayload -scenario read -qps 5000 -workers 8
//	holidayload -scenario ci -compare BENCH_baseline.json -threshold 0.25
//	holidayload -replay BENCH_pr.json -compare BENCH_baseline.json
//	holidayload -diff-window demo,1,52 -target http://127.0.0.1:8091
//	holidayload -list
//
// -proto binary drives window and next queries through the /v1/bin
// packed-bitmap endpoints (DESIGN.md §9); -batch N pipelines N ops per
// request, and batched binary runs route churn through /v1/bin/churn so the
// server amortizes each community's edits into one flush (DESIGN.md §10).
// -churn-batch N is the in-process equivalent: ops are grouped into batches
// of N and churn is applied through Community.ChurnBatch. -churn-frac F
// rebalances any scenario's op mix so fraction F of ops are churn.
// -diff-window fetches one window over both protocols and fails unless they
// decode identically — the smoke-level differential check.
//
// Exit status: 0 on success (and a passing comparison), 1 on usage or run
// errors, 2 when -compare detects a regression beyond the threshold.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchkit"
	"repro/internal/service"
	"repro/internal/wire"
)

func main() {
	var (
		scenario   = flag.String("scenario", "ci", "named workload to run (see -list)")
		list       = flag.Bool("list", false, "list the known scenarios and exit")
		duration   = flag.Duration("duration", 0, "measured run length (default: the scenario's)")
		qps        = flag.Float64("qps", 0, "aggregate target rate; 0 = unthrottled")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent load workers")
		seed       = flag.Uint64("seed", 1, "seed for community generation and op streams")
		target     = flag.String("target", "", "drive a live holidayd at this base URL instead of in-process")
		clusterTop = flag.String("cluster", "", "drive a holidayd cluster from this topology file (nodes.json): writes route to owners, reads fan out over members")
		proto      = flag.String("proto", "json", "wire protocol for window/next queries with -target: json or binary")
		batch      = flag.Int("batch", 1, "ops per request (requires -proto binary); 1 = unbatched")
		churnBatch = flag.Int("churn-batch", 1,
			"group ops into batches of this size for in-process runs, amortizing churn through the batched write path; 1 = per-op")
		churnFrac = flag.Float64("churn-frac", -1,
			"override the scenario's churn fraction with a value in [0,1], preserving its read and churn ratios; negative keeps the scenario's own mix")
		diffWin    = flag.String("diff-window", "", "fetch one window as \"community,from,to\" over both protocols and diff them (requires -target)")
		persist    = flag.Bool("persist", false, "enable the durability WAL on the in-process registry (prices the write-ahead hot path; ignored with -target)")
		syncAlways = flag.Bool("wal-sync-always", false,
			"with -persist, fsync every WAL append before acking (per-op durability) instead of timer group commit — the regime where -churn-batch amortization matters most")
		rotateEvery = flag.Duration("rotate-every", 0,
			"with -cluster, live-move one community to another node at this interval during the measured run, recording the handoff count and write-pause p99 in the snapshot; 0 = static placement")
		out       = flag.String("out", "", "snapshot output path (default BENCH_<rev>.json; \"-\" skips writing)")
		replay    = flag.String("replay", "", "load the current snapshot from a file instead of running")
		compare   = flag.String("compare", "", "prior snapshot to compare against; regression fails the exit status")
		threshold = flag.Float64("threshold", 0.25, "gated-metric regression tolerance for -compare (0.25 = 25%)")
		note      = flag.String("note", "", "free-form note recorded in the snapshot")
		rev       = flag.String("rev", "", "revision label for the snapshot (default: git short rev)")
	)
	flag.Parse()
	if *list {
		for _, sc := range benchkit.Scenarios() {
			fmt.Printf("%-8s %s (%d communities, default %s)\n", sc.Name, sc.Desc, len(sc.Communities), sc.Duration)
		}
		return
	}
	// Numeric flags fail loudly instead of silently defaulting: a CI job
	// that typos -workers 0 should not gate on a one-worker run.
	if *workers < 1 {
		usageError("-workers must be ≥ 1, got %d", *workers)
	}
	if *qps < 0 {
		usageError("-qps must be ≥ 0, got %g", *qps)
	}
	if *duration < 0 {
		usageError("-duration must be positive, got %s", *duration)
	}
	if *threshold <= 0 || *threshold >= 1 {
		usageError("-threshold must be in (0,1), got %g", *threshold)
	}
	if *replay != "" && (*target != "" || *duration != 0) {
		usageError("-replay loads a recorded snapshot; it cannot be combined with -target or -duration")
	}
	// The target URL is validated before any run or diff starts: a typoed
	// scheme used to surface minutes later as a per-op connection error.
	if *target != "" {
		if err := validateTarget(*target); err != nil {
			usageError("%v", err)
		}
	}
	if *proto != benchkit.ProtoJSON && *proto != benchkit.ProtoBinary {
		usageError("-proto must be %q or %q, got %q", benchkit.ProtoJSON, benchkit.ProtoBinary, *proto)
	}
	if *proto == benchkit.ProtoBinary && *target == "" && *clusterTop == "" {
		usageError("-proto binary drives a live holidayd's /v1/bin endpoints; it requires -target or -cluster")
	}
	if *batch < 1 {
		usageError("-batch must be ≥ 1, got %d", *batch)
	}
	if *batch > 1 && *proto != benchkit.ProtoBinary {
		usageError("-batch groups frames of the binary protocol; add -proto binary")
	}
	if *churnBatch < 1 {
		usageError("-churn-batch must be ≥ 1, got %d", *churnBatch)
	}
	if *churnBatch > 1 && (*target != "" || *clusterTop != "") {
		usageError("-churn-batch batches the in-process write path; against a live holidayd use -batch with -proto binary")
	}
	if *churnBatch > 1 && *batch > 1 {
		usageError("-churn-batch and -batch both set the batch size; use one")
	}
	if *churnFrac > 1 {
		usageError("-churn-frac must be in [0,1], got %g", *churnFrac)
	}
	if *syncAlways && !*persist {
		usageError("-wal-sync-always tunes the durability WAL; add -persist")
	}
	if *rotateEvery < 0 {
		usageError("-rotate-every must be ≥ 0, got %s", *rotateEvery)
	}
	if *rotateEvery > 0 && *clusterTop == "" {
		usageError("-rotate-every moves communities between cluster members; it requires -cluster")
	}
	if *diffWin != "" {
		if *target == "" {
			usageError("-diff-window compares a live holidayd's two protocols; it requires -target")
		}
		if err := diffWindow(*target, *diffWin); err != nil {
			fatal(err)
		}
		fmt.Printf("diff-window %s: binary and JSON windows are identical\n", *diffWin)
		return
	}

	var snap *benchkit.Snapshot
	var err error
	if *replay != "" {
		snap, err = benchkit.LoadSnapshot(*replay)
		if err != nil {
			fatal(err)
		}
	} else {
		sc, err := benchkit.ScenarioByName(*scenario)
		if err != nil {
			fatal(err)
		}
		if *churnFrac >= 0 {
			if sc, err = sc.WithChurnFraction(*churnFrac); err != nil {
				fatal(err)
			}
		}
		var driver benchkit.Driver
		var clusterDriver *benchkit.ClusterDriver
		if *clusterTop != "" {
			if *target != "" {
				usageError("-cluster and -target are mutually exclusive")
			}
			if *persist {
				usageError("-persist only applies to in-process runs; a cluster's durability is each daemon's -data-dir")
			}
			topo, err := service.LoadTopology(*clusterTop)
			if err != nil {
				fatal(err)
			}
			clusterDriver, err = benchkit.NewClusterDriver(topo, *workers)
			if err != nil {
				fatal(err)
			}
			clusterDriver.Proto = *proto
			driver = clusterDriver
		} else if *target != "" {
			if *persist {
				usageError("-persist only applies to in-process runs; a live holidayd's durability is its own -data-dir")
			}
			httpDriver := benchkit.NewHTTPDriver(*target, *workers)
			httpDriver.Proto = *proto
			driver = httpDriver
		} else {
			inproc := benchkit.NewInProcDriver(service.NewRegistry())
			inproc.ForcePersist = *persist
			inproc.SyncEveryOp = *syncAlways
			driver = inproc
		}
		// Cluster runs verify the replication contract up front: an owner's
		// acked write (its journal sequence) must become visible on every
		// replica, byte-identically, before the measured run trusts
		// replica-served reads.
		if clusterDriver != nil {
			if _, err := clusterDriver.Setup(sc, *seed); err != nil {
				fatal(err)
			}
			id := sc.Communities[0].ID
			if err := clusterDriver.VerifyReadYourWrites(id, 15*time.Second); err != nil {
				fatal(err)
			}
			fmt.Printf("read-your-writes verified on %q across %d nodes\n", id, clusterDriver.NodeCount())
		}
		if *rev == "" {
			*rev = gitRev()
		}
		opt := benchkit.Options{
			Duration: *duration,
			Workers:  *workers,
			QPS:      *qps,
			Seed:     *seed,
			Batch:    max(*batch, *churnBatch),
			Rev:      *rev,
			Note:     *note,
		}
		// Placement rotation runs beside the measured load: a ticker moves
		// one community per interval through a live handoff, and the
		// snapshot records how many moves ran and the p99 write pause they
		// cost — the number the epoch plane is supposed to keep small.
		var stopRotate func()
		if *rotateEvery > 0 {
			stopRotate = startRotation(clusterDriver, *rotateEvery)
		}
		snap, err = benchkit.Run(sc, driver, opt)
		if stopRotate != nil {
			stopRotate()
		}
		if err != nil {
			fatal(err)
		}
		if clusterDriver != nil {
			if pauses := clusterDriver.HandoffPauses(); len(pauses) > 0 {
				snap.Handoffs = len(pauses)
				snap.HandoffPauseP99Micro = benchkit.PauseP99(pauses)
			}
		}
		benchkit.RenderSnapshot(os.Stdout, snap)
		if *out != "-" {
			path := *out
			if path == "" {
				path = "BENCH_" + sanitize(snap.Rev) + ".json"
			}
			if err := snap.WriteFile(path); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	if *compare == "" {
		return
	}
	old, err := benchkit.LoadSnapshot(*compare)
	if err != nil {
		fatal(err)
	}
	cmp := benchkit.Compare(old, snap, *threshold)
	fmt.Printf("\ncomparing against %s (rev %s, %s):\n", *compare, old.Rev, old.Timestamp)
	cmp.Render(os.Stdout, *threshold)
	if !cmp.Pass {
		os.Exit(2)
	}
}

// startRotation moves one community per tick until the returned stop
// function is called. Failed moves are reported but do not abort the run —
// only completed handoffs count toward the snapshot's rotation metrics.
func startRotation(d *benchkit.ClusterDriver, every time.Duration) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				if err := d.Rotate(ctx); err != nil && ctx.Err() == nil {
					fmt.Fprintln(os.Stderr, "holidayload: rotation:", err)
				}
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// validateTarget checks a -target base URL up front: an absolute http(s)
// URL with a host.
func validateTarget(s string) error {
	u, err := url.Parse(s)
	if err != nil {
		return fmt.Errorf("-target %q is not a valid URL: %v", s, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("-target %q must use the http or https scheme, got %q", s, u.Scheme)
	}
	if u.Host == "" {
		return fmt.Errorf("-target %q has no host (use e.g. http://127.0.0.1:8080)", s)
	}
	return nil
}

// jsonWindow mirrors the JSON window payload for the diff.
type jsonWindow struct {
	From     int64 `json:"from"`
	To       int64 `json:"to"`
	Holidays []struct {
		Holiday int64 `json:"holiday"`
		Happy   []int `json:"happy"`
	} `json:"holidays"`
}

// diffWindow fetches one window over both protocols from a live holidayd
// and errors unless they decode to the same schedule — the smoke-level
// binary≡JSON check (the exhaustive differential proof lives in the tests).
func diffWindow(target, spec string) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return fmt.Errorf(`-diff-window wants "community,from,to", got %q`, spec)
	}
	id := parts[0]
	from, err1 := strconv.ParseInt(parts[1], 10, 64)
	to, err2 := strconv.ParseInt(parts[2], 10, 64)
	if id == "" || err1 != nil || err2 != nil {
		return fmt.Errorf(`-diff-window wants "community,from,to" with integer bounds, got %q`, spec)
	}
	base := strings.TrimRight(target, "/")

	resp, err := http.Get(fmt.Sprintf("%s/communities/%s/window?from=%d&to=%d", base, url.PathEscape(id), from, to))
	if err != nil {
		return err
	}
	jsonBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("JSON window query: status %d: %s", resp.StatusCode, bytes.TrimSpace(jsonBody))
	}
	var jw jsonWindow
	if err := json.Unmarshal(jsonBody, &jw); err != nil {
		return fmt.Errorf("JSON window decode: %v", err)
	}

	resp, err = http.Post(base+"/v1/bin/window", "application/octet-stream",
		bytes.NewReader(wire.AppendWindowReq(nil, id, from, to)))
	if err != nil {
		return err
	}
	binBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("binary window query: status %d: %s", resp.StatusCode, bytes.TrimSpace(binBody))
	}
	f, rest, err := wire.Split(binBody)
	if err != nil || len(rest) != 0 {
		return fmt.Errorf("binary window framing: %v (%d stray bytes)", err, len(rest))
	}
	if f.Kind == wire.KindError {
		status, code, msg, _ := f.ErrorResp()
		return fmt.Errorf("binary window query failed in-band: status %d (code %d): %s", status, code, msg)
	}
	wr, err := f.WindowResp()
	if err != nil {
		return err
	}

	if wr.From != jw.From || wr.Rows != len(jw.Holidays) {
		return fmt.Errorf("window shape differs: binary from=%d rows=%d, JSON from=%d rows=%d",
			wr.From, wr.Rows, jw.From, len(jw.Holidays))
	}
	var happy []int
	for i, row := range jw.Holidays {
		if wr.Holiday(i) != row.Holiday {
			return fmt.Errorf("row %d: binary holiday %d, JSON holiday %d", i, wr.Holiday(i), row.Holiday)
		}
		happy = wr.AppendHappy(happy[:0], i)
		if len(happy) != len(row.Happy) {
			return fmt.Errorf("holiday %d: binary happy set %v, JSON %v", row.Holiday, happy, row.Happy)
		}
		for j := range happy {
			if happy[j] != row.Happy[j] {
				return fmt.Errorf("holiday %d: binary happy set %v, JSON %v", row.Holiday, happy, row.Happy)
			}
		}
	}
	return nil
}

// gitRev labels snapshots with the working tree's short revision, falling
// back to "dev" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

// sanitize keeps revision labels filename-safe.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// usageError reports a flag mistake and exits 1.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "holidayload: "+format+"\n", args...)
	flag.Usage()
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "holidayload:", err)
	os.Exit(1)
}
