// Facade-level differential proof of the binary wire format: for every
// algorithm the facade exposes, a window encoded as packed wire bitmaps and
// decoded again must reproduce the []int rows of Schedule.Window exactly —
// the same equivalence the JSON endpoints serve, at every alignment.
package holiday_test

import (
	"reflect"
	"sort"
	"testing"

	holiday "repro"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/wire"
)

// encodeScheduleWindow renders one window of a schedule as a complete
// binary window-response frame, exactly as the serving layer does: header
// first, then one packed ⌈n/64⌉-word row per holiday via core.WindowBits.
func encodeScheduleWindow(sched holiday.Schedule, n int, from, to int64) []byte {
	buf := wire.AppendWindowRespHeader(nil, n, from, int(to-from+1))
	core.WindowBits(sched, n, from, to, func(_ int64, row graph.Bitset) {
		buf = row.AppendBytes(buf)
	})
	return buf
}

// TestWireWindowMatchesSchedule: encode → decode must equal Window replay
// across all algorithms × seeds × window alignments. Closed-form periodic
// schedules emit bitmaps natively (core.BitWindower); stateful algorithms
// run through the packing fallback — both must agree with the []int rows
// bit for bit.
func TestWireWindowMatchesSchedule(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp":   graph.GNP(72, 0.07, 19),
		"star":  graph.Star(17),
		"cycle": graph.Cycle(31),
	}
	windows := [][2]int64{
		{1, 1},     // single first holiday
		{1, 52},    // a year from the epoch
		{2, 5},     // unaligned short window
		{37, 211},  // interior
		{509, 540}, // crosses the word and sharding scale
	}
	for gname, g := range graphs {
		for _, algo := range holiday.Algorithms() {
			for _, seed := range []uint64{1, 7} {
				sched, err := holiday.NewSchedule(g, algo, holiday.WithSeed(seed))
				if err != nil {
					t.Fatalf("%s/%s: %v", gname, algo, err)
				}
				for _, w := range windows {
					from, to := w[0], w[1]
					// Record the reference rows first: replay schedules hold
					// their cursor lock across the visit callback.
					// The bitmap is canonically sorted; some stateful
					// schedulers (greedy-mis) emit their []int rows in
					// discovery order, so compare as sets.
					var want [][]int
					sched.Window(from, to, func(_ int64, happy []int) {
						row := append([]int(nil), happy...)
						sort.Ints(row)
						want = append(want, row)
					})
					frame, rest, err := wire.Split(encodeScheduleWindow(sched, g.N(), from, to))
					if err != nil || len(rest) != 0 {
						t.Fatalf("%s/%s seed=%d [%d,%d]: framing: %v (%d rest)",
							gname, algo, seed, from, to, err, len(rest))
					}
					wr, err := frame.WindowResp()
					if err != nil {
						t.Fatalf("%s/%s seed=%d [%d,%d]: %v", gname, algo, seed, from, to, err)
					}
					if wr.N != g.N() || wr.From != from || wr.Rows != len(want) {
						t.Fatalf("%s/%s seed=%d [%d,%d]: header n=%d from=%d rows=%d, want n=%d rows=%d",
							gname, algo, seed, from, to, wr.N, wr.From, wr.Rows, g.N(), len(want))
					}
					var happy []int
					for i := range want {
						if wr.Holiday(i) != from+int64(i) {
							t.Fatalf("%s/%s seed=%d: row %d is holiday %d, want %d",
								gname, algo, seed, i, wr.Holiday(i), from+int64(i))
						}
						happy = wr.AppendHappy(happy[:0], i)
						if len(happy) == 0 && len(want[i]) == 0 {
							continue
						}
						if !reflect.DeepEqual(happy, want[i]) {
							t.Fatalf("%s/%s seed=%d: holiday %d decoded %v, want %v",
								gname, algo, seed, from+int64(i), happy, want[i])
						}
					}
				}
			}
		}
	}
}
