// Package holiday is the public API of the Family Holiday Gathering
// library, a reproduction of "The Family Holiday Gathering Problem or Fair
// and Periodic Scheduling of Independent Sets" (Amir, Kapah, Kopelowitz,
// Naor, Porat; SPAA 2016).
//
// A Community is a set of families; two families are in-laws when a child
// of one is married to a child of the other. A Scheduler emits, for every
// holiday, the set of families that get all their children home — always an
// independent set of the in-law (conflict) graph. The algorithms guarantee
// per-family waits that depend only on local properties:
//
//   - PhasedGreedy (§3): wait ≤ deg+1, non-periodic.
//   - ColorBound (§4.2): perfectly periodic with period 2^ρ(color), via the
//     Elias omega code (Theorem 4.2).
//   - DegreeBound (§5): perfectly periodic with period 2^⌈log(deg+1)⌉ ≤ 2·deg.
//   - RoundRobin, FirstGrab: the paper's baselines.
//
// Quick start:
//
//	c := holiday.NewCommunity()
//	c.MustMarry("Cohen", "Levi")
//	c.MustMarry("Cohen", "Mizrahi")
//	s, _ := holiday.New(c.Graph(), holiday.DegreeBound)
//	for year := 1; year <= 4; year++ {
//	    fmt.Println(year, c.Names(s.Next()))
//	}
//
// NewSchedule lifts an algorithm to a random-access Schedule — HappySet(t),
// Window(from, to), NextHappy(v, t) — closed-form for the periodic
// algorithms, bounded replay for the stateful ones. Analyze measures
// realized waits over a horizon; AnalyzeParallel, AnalyzeSchedule, and
// RunBatch run the same analysis on the concurrent engine (horizon sharding
// over Schedule.Window, batch fan-out, word-packed bitset independence
// checks) with byte-identical Reports. cmd/holidayd serves schedules for
// many communities over HTTP. See README.md, DESIGN.md §4/§6, and
// EXPERIMENTS.md.
package holiday

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/prefixcode"
)

// Re-exported core types: the conflict graph, schedulers, and analysis.
type (
	// Graph is the in-law conflict graph (nodes are families).
	Graph = graph.Graph
	// Edge is an in-law relation between two families.
	Edge = graph.Edge
	// Scheduler emits one independent happy set per holiday.
	Scheduler = core.Scheduler
	// Periodic is a perfectly periodic scheduler (Period/Offset per node).
	Periodic = core.Periodic
	// Schedule is random access into a scheduler's sequence: HappySet(t),
	// Window(from, to), NextHappy(v, t). Closed-form for the periodic
	// algorithms, bounded replay for the stateful ones. See NewSchedule.
	Schedule = core.Schedule
	// Report summarizes realized per-family waits over a horizon.
	Report = core.Report
	// NodeReport is one family's statistics within a Report.
	NodeReport = core.NodeReport
	// Coloring assigns a color ≥ 1 to every family.
	Coloring = coloring.Coloring
	// Gathering is a single holiday's couple-to-household orientation.
	Gathering = core.Gathering
)

// Algorithm selects a scheduling algorithm from the paper.
type Algorithm string

// The available algorithms.
const (
	// PhasedGreedy is the §3 non-periodic algorithm (wait ≤ deg+1).
	PhasedGreedy Algorithm = "phased-greedy"
	// PhasedGreedyDistributed is §3 executed as a real message-passing
	// protocol on the LOCAL-model simulator (3 rounds per holiday).
	PhasedGreedyDistributed Algorithm = "phased-greedy-distributed"
	// ColorBound is the §4.2 prefix-code periodic algorithm.
	ColorBound Algorithm = "color-bound"
	// DegreeBound is the §5.1 sequential periodic algorithm (period ≤ 2d).
	DegreeBound Algorithm = "degree-bound"
	// DegreeBoundDistributed is the §5.2 distributed variant.
	DegreeBoundDistributed Algorithm = "degree-bound-distributed"
	// RoundRobin cycles through the colors of a proper coloring (§1).
	RoundRobin Algorithm = "round-robin"
	// FirstGrab is the chaotic random baseline from §1.
	FirstGrab Algorithm = "first-grab"
	// GreedyMIS is the maximal-independent-set strengthening of FirstGrab.
	GreedyMIS Algorithm = "greedy-mis"
)

// Algorithms lists every available algorithm name.
func Algorithms() []Algorithm {
	return []Algorithm{PhasedGreedy, PhasedGreedyDistributed, ColorBound,
		DegreeBound, DegreeBoundDistributed, RoundRobin, FirstGrab, GreedyMIS}
}

// options collects optional scheduler configuration.
type options struct {
	seed     uint64
	code     prefixcode.Code
	coloring coloring.Coloring
	// err records an invalid option (e.g. an unknown prefix-code name) so
	// New can surface it instead of silently using a default.
	err error
}

// Option configures New.
type Option func(*options)

// WithSeed fixes the random seed of randomized algorithms (default 1).
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithCode selects the prefix code for ColorBound: "unary", "gamma",
// "delta", or "omega" (the default, matching Theorem 4.2). An unknown name
// is an error, surfaced by New.
func WithCode(name string) Option {
	return func(o *options) {
		c, err := prefixcode.ByName(name)
		if err != nil {
			o.err = fmt.Errorf("holiday: %w", err)
			return
		}
		o.code = c
	}
}

// WithColoring supplies a proper coloring for the color-driven algorithms
// instead of the default greedy one (e.g. a bipartite 2-coloring).
func WithColoring(col Coloring) Option { return func(o *options) { o.coloring = col } }

// New constructs the requested scheduler over the conflict graph.
func New(g *Graph, algo Algorithm, opts ...Option) (Scheduler, error) {
	o := options{seed: 1, code: prefixcode.Omega{}}
	for _, opt := range opts {
		opt(&o)
	}
	if o.err != nil {
		return nil, o.err
	}
	col := o.coloring
	if col == nil {
		col = coloring.Greedy(g, coloring.IdentityOrder(g.N()))
	}
	switch algo {
	case PhasedGreedy:
		return core.NewPhasedGreedy(g, col)
	case PhasedGreedyDistributed:
		return core.NewPhasedGreedyDistributed(g, col)
	case ColorBound:
		return core.NewColorBound(g, col, o.code)
	case DegreeBound:
		return core.NewDegreeBoundSequential(g), nil
	case DegreeBoundDistributed:
		s, _, err := core.NewDegreeBoundDistributed(g, o.seed)
		return s, err
	case RoundRobin:
		return core.NewRoundRobin(g, col)
	case FirstGrab:
		return core.NewFirstGrab(g, o.seed), nil
	case GreedyMIS:
		return core.NewGreedyMIS(g, o.seed), nil
	default:
		return nil, fmt.Errorf("holiday: unknown algorithm %q (valid: %v)", algo, Algorithms())
	}
}

// NewSchedule constructs the requested algorithm's schedule as a
// random-access value: any holiday, window, or per-family query can be
// answered without replaying from the start (closed-form for the perfectly
// periodic algorithms; a bounded replay/memo cursor that reconstructs the
// scheduler on backward seeks for the stateful ones). The returned Schedule
// is safe for concurrent use.
func NewSchedule(g *Graph, algo Algorithm, opts ...Option) (Schedule, error) {
	s, err := New(g, algo, opts...)
	if err != nil {
		return nil, err
	}
	if p, ok := s.(core.Periodic); ok {
		return core.NewPeriodicSchedule(p, g.N()), nil
	}
	return core.NewReplaySchedule(s, func() (Scheduler, error) {
		return New(g, algo, opts...)
	}), nil
}

// AnalyzeSchedule is AnalyzeParallel over an existing Schedule: random-
// access schedules shard the horizon across all cores, replay schedules
// stream one sequential window. It lets a caller that already holds a
// schedule (e.g. for serving window queries) analyze it without
// reconstructing the scheduler.
func AnalyzeSchedule(sched Schedule, g *Graph, holidays int64) *Report {
	return engine.AnalyzeSchedule(sched, g, holidays, engine.Options{})
}

// Analyze runs a scheduler for the given number of holidays, verifying that
// every happy set is independent and collecting per-family gap statistics.
func Analyze(s Scheduler, g *Graph, holidays int64) *Report {
	return core.Analyze(s, g, holidays)
}

// AnalyzeParallel is Analyze on the concurrent engine: byte-identical
// Reports, but perfectly periodic schedulers (ColorBound, DegreeBound,
// RoundRobin) are sharded across all cores by holiday range, and
// independence checks use word-packed bitsets on graphs small enough for
// the n²/8-byte adjacency matrix. Non-periodic schedulers fall back to a
// bitset-accelerated sequential pass; parallelize those across runs with
// RunBatch instead. When the periodic fast path engages, s is not advanced.
func AnalyzeParallel(s Scheduler, g *Graph, holidays int64) *Report {
	return engine.Analyze(s, g, holidays, engine.Options{})
}

// BatchJob describes one scheduler run for RunBatch: algorithm algo over
// graph G for Horizon holidays, configured by Opts as in New.
type BatchJob struct {
	// Graph is the conflict graph to schedule.
	Graph *Graph
	// Algo selects the scheduling algorithm, as in New.
	Algo Algorithm
	// Opts configures the scheduler, as in New.
	Opts []Option
	// Horizon is the number of holidays to analyze.
	Horizon int64
}

// RunBatch analyzes every job concurrently across GOMAXPROCS workers and
// returns the reports in job order. This is the engine's second parallel
// axis: experiments that sweep many (graph, algorithm, seed) combinations
// scale across cores even when each individual scheduler is stateful. A
// scheduler-construction failure leaves a nil report in that job's slot and
// is returned as the error after every other job has finished.
func RunBatch(jobs []BatchJob) ([]*Report, error) {
	ejobs := make([]engine.Job, len(jobs))
	for i, j := range jobs {
		ejobs[i] = engine.Job{
			Graph:   j.Graph,
			New:     func() (Scheduler, error) { return New(j.Graph, j.Algo, j.Opts...) },
			Horizon: j.Horizon,
		}
	}
	return engine.RunBatch(ejobs, engine.Options{})
}

// GreedyColoring returns the default proper, degree-bounded coloring used
// by the color-driven schedulers.
func GreedyColoring(g *Graph) Coloring {
	return coloring.Greedy(g, coloring.IdentityOrder(g.N()))
}

// BipartiteColoring 2-colors a bipartite community (the intro's intergroup
// marriage example), or errors when the community contains an odd cycle.
func BipartiteColoring(g *Graph) (Coloring, error) {
	return coloring.Bipartite(g)
}
