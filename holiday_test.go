package holiday_test

import (
	"testing"

	holiday "repro"
	"repro/internal/graph"
)

func sampleCommunity() *holiday.Community {
	c := holiday.NewCommunity()
	c.MustMarry("Cohen", "Levi")
	c.MustMarry("Cohen", "Mizrahi")
	c.MustMarry("Levi", "Peretz")
	c.MustMarry("Mizrahi", "Peretz")
	c.MustMarry("Cohen", "Biton")
	return c
}

func TestCommunityBuilder(t *testing.T) {
	c := sampleCommunity()
	if c.Size() != 5 {
		t.Fatalf("families = %d, want 5", c.Size())
	}
	g := c.Graph()
	if g.M() != 5 {
		t.Fatalf("marriages = %d, want 5", g.M())
	}
	cohen := c.FamilyID("Cohen")
	if cohen == -1 || c.FamilyName(cohen) != "Cohen" {
		t.Fatal("name/id round trip broken")
	}
	if g.Degree(cohen) != 3 {
		t.Errorf("Cohen has %d in-law families, want 3", g.Degree(cohen))
	}
	if c.FamilyID("Nobody") != -1 {
		t.Error("unknown family must map to -1")
	}
	if err := c.Marry("Cohen", "Cohen"); err == nil {
		t.Error("intra-family marriage must error")
	}
	if c.AddFamily("Cohen") != cohen {
		t.Error("re-adding a family must return the same id")
	}
}

func TestNewAllAlgorithms(t *testing.T) {
	g := sampleCommunity().Graph()
	for _, algo := range holiday.Algorithms() {
		s, err := holiday.New(g, algo, holiday.WithSeed(3))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		rep := holiday.Analyze(s, g, 200)
		if rep.IndependenceViolations != 0 {
			t.Errorf("%s: emitted %d dependent happy sets", algo, rep.IndependenceViolations)
		}
	}
}

func TestNewUnknownAlgorithm(t *testing.T) {
	if _, err := holiday.New(graph.Empty(1), "quantum"); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

func TestWithColoringAndCode(t *testing.T) {
	g := graph.CompleteBipartite(4, 4)
	col, err := holiday.BipartiteColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := holiday.New(g, holiday.ColorBound,
		holiday.WithColoring(col), holiday.WithCode("gamma"))
	if err != nil {
		t.Fatal(err)
	}
	p, ok := s.(holiday.Periodic)
	if !ok {
		t.Fatal("color-bound must be periodic")
	}
	// gamma(1) = "1" -> period 2; gamma(2) = "010" -> period 8.
	if p.Period(0) != 2 && p.Period(0) != 8 {
		t.Errorf("unexpected period %d", p.Period(0))
	}
}

func TestDegreeBoundPeriodsViaFacade(t *testing.T) {
	g := sampleCommunity().Graph()
	s, err := holiday.New(g, holiday.DegreeBound)
	if err != nil {
		t.Fatal(err)
	}
	p := s.(holiday.Periodic)
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if d >= 1 && p.Period(v) > int64(2*d) {
			t.Errorf("family %d (deg %d) period %d exceeds 2d", v, d, p.Period(v))
		}
	}
}

func TestNamesSorted(t *testing.T) {
	c := sampleCommunity()
	names := c.Names([]int{c.FamilyID("Peretz"), c.FamilyID("Biton")})
	if len(names) != 2 || names[0] != "Biton" || names[1] != "Peretz" {
		t.Errorf("names = %v, want sorted [Biton Peretz]", names)
	}
}

func TestGreedyColoringExported(t *testing.T) {
	g := sampleCommunity().Graph()
	col := holiday.GreedyColoring(g)
	for v := 0; v < g.N(); v++ {
		if col[v] < 1 || col[v] > g.Degree(v)+1 {
			t.Errorf("color %d of node %d outside [1, deg+1]", col[v], v)
		}
	}
}
